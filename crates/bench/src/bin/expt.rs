//! The experiment harness: one subcommand per table/figure of the paper's
//! evaluation (§6). Run `expt all` to regenerate everything; see
//! EXPERIMENTS.md for the paper-vs-measured record.
//!
//! ```text
//! cargo run --release -p itg-bench --bin expt -- <table6|fig12|fig13|fig14|
//!     fig15a|fig15b|fig16a|fig16b|fig17|scaling|serve|profile|all>
//!     [--profile FILE] [--transport local|process] [--durable]
//! ```
//!
//! `--durable` runs every iTurboGraph session with the write-ahead log
//! enabled (a fresh WAL directory per session under the system temp dir),
//! so any experiment doubles as a WAL-overhead measurement against its
//! published non-durable numbers. It requires the in-process transport.
//!
//! `scaling` is not a paper artifact: it measures intra-partition thread
//! scaling (`threads_per_machine` ∈ {1, 2, 4}) on a skewed RMAT graph.
//!
//! `serve` is not a paper artifact either: it maintains K identical
//! standing queries over the same mutation stream, isolated (K sessions)
//! vs shared (one `QueryRegistry`), asserting byte-equal results and
//! reporting the sharing speedup (DESIGN.md §11.5).
//!
//! `profile [algo]` is the observability entry point: it runs one algorithm
//! (default `pr`) one-shot plus incremental batches under an enabled
//! recorder and prints the per-operator cost breakdown (span tree, Δ-stream
//! counters, IO histograms). The global `--profile FILE` flag composes with
//! any subcommand: it enables the process-wide recorder up front and writes
//! the accumulated profile as JSON (schema v1) to `FILE` on exit.

use itg_baselines::{DdIterative, DdTriangles, GraphBolt, MemoryBudget, ValueRule};
use itg_bench::*;
use iturbograph::prelude::*;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let profile_out = take_flag_value(&mut args, "--profile");
    if take_flag(&mut args, "--durable") {
        DURABLE.store(true, std::sync::atomic::Ordering::Relaxed);
    }
    match take_flag_value(&mut args, "--transport").as_deref() {
        None | Some("local") => {}
        Some("process") => {
            TRANSPORT
                .set(TransportKind::Process { workers: 0 })
                .expect("transport set once");
        }
        Some(other) => {
            eprintln!("unknown transport `{other}` (try local|process)");
            std::process::exit(2);
        }
    }
    if durable() && matches!(transport_kind(), TransportKind::Process { .. }) {
        eprintln!("--durable requires --transport local (WAL is coordinator-side)");
        std::process::exit(2);
    }
    if profile_out.is_some() && !itg_obs::init_global(true) {
        eprintln!("warning: global recorder already initialized; --profile may be partial");
    }
    let which = args.first().map(|s| s.as_str()).unwrap_or("all");
    match which {
        "table6" => table6(),
        "fig12" => fig12(),
        "fig13" => fig13(),
        "fig14" => fig14(),
        "fig15a" => fig15a(),
        "fig15b" => fig15b(),
        "fig16a" => fig16a(),
        "fig16b" => fig16b(),
        "fig17" => fig17(),
        "scaling" => scaling(),
        "serve" => serve_expt(),
        "profile" => profile(args.get(1).map(|s| s.as_str()).unwrap_or("pr")),
        "all" => {
            table6();
            fig12();
            fig13();
            fig14();
            fig15a();
            fig15b();
            fig16a();
            fig16b();
            fig17();
            scaling();
            serve_expt();
        }
        other => {
            eprintln!("unknown experiment `{other}`");
            std::process::exit(2);
        }
    }
    if let Some(path) = profile_out {
        let json = itg_obs::global().profile().to_json();
        match std::fs::write(&path, &json) {
            Ok(()) => eprintln!("profile written to {path}"),
            Err(e) => {
                eprintln!("failed to write profile to {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}

/// Remove a bare `--flag` from `args`, returning whether it was present.
fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    if let Some(i) = args.iter().position(|a| a == flag) {
        args.remove(i);
        true
    } else {
        false
    }
}

/// Remove `--flag VALUE` from `args`, returning `VALUE` when present.
fn take_flag_value(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    if i + 1 >= args.len() {
        eprintln!("{flag} requires a value");
        std::process::exit(2);
    }
    let v = args.remove(i + 1);
    args.remove(i);
    Some(v)
}

/// `expt profile [algo]`: per-operator cost breakdown of one algorithm on a
/// mid-size RMAT graph — one-shot run, then `BATCHES` incremental batches,
/// each section rendered from the run's own interval profile so operator
/// timings can be checked against `RunMetrics::wall`.
fn profile(algo: &str) {
    let Some(src) = iturbograph::algorithms::source(algo) else {
        eprintln!("unknown algorithm `{algo}` (try pr|lp|wcc|bfs|tc|lcc)");
        std::process::exit(2);
    };
    let mut ds = if algo == "pr" {
        Dataset::rmat_directed("RMAT_14", 14, 61)
    } else {
        Dataset::rmat_undirected("RMAT_14", 14, 61)
    };
    let mut cfg = single_machine_cfg(algo);
    // Record into the process-wide recorder when `--profile` enabled it
    // (so the JSON dump sees this run), else into a private one.
    cfg.obs = if itg_obs::global().is_enabled() {
        itg_obs::global().clone()
    } else {
        itg_obs::Recorder::enabled()
    };
    let mut session = SessionBuilder::from_config(cfg).from_source(&src, &ds.graph_input()).unwrap();
    let labels = session.operator_labels();

    let one = session.run_oneshot();
    println!("=== {} one-shot: {} ===", algo.to_uppercase(), one.summary());
    let p = one.profile.as_ref().expect("recorder enabled");
    print!("{}", itg_obs::render_breakdown(p, one.wall.as_nanos() as u64, &labels));

    let mut merged: Option<itg_obs::Profile> = None;
    let mut inc_wall_ns = 0u64;
    let mut last_summary = String::new();
    for _ in 0..BATCHES {
        let batch = ds.next_batch(BATCH_SIZE, RATIO);
        session.apply_mutations(&batch);
        let m = session.run_incremental();
        inc_wall_ns += m.wall.as_nanos() as u64;
        last_summary = m.summary();
        let mp = m.profile.expect("recorder enabled");
        merged = Some(match merged {
            None => mp,
            Some(mut acc) => {
                acc.merge(&mp);
                acc
            }
        });
    }
    println!();
    println!(
        "=== {} incremental ({BATCHES} batches of {BATCH_SIZE}, last: {}) ===",
        algo.to_uppercase(),
        last_summary
    );
    let p = merged.expect("at least one batch");
    print!("{}", itg_obs::render_breakdown(&p, inc_wall_ns, &labels));
}

const BATCHES: usize = 4;
const BATCH_SIZE: usize = 100;
const RATIO: u32 = 75;

/// The exchange plane every experiment builds its sessions on, set once
/// from the global `--transport {local,process}` flag (`process` = one
/// `itg-partition-worker` OS process per machine).
static TRANSPORT: std::sync::OnceLock<TransportKind> = std::sync::OnceLock::new();

fn transport_kind() -> TransportKind {
    TRANSPORT.get().copied().unwrap_or(TransportKind::Local)
}

/// The global `--durable` flag: every session gets a WAL.
static DURABLE: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

fn durable() -> bool {
    DURABLE.load(std::sync::atomic::Ordering::Relaxed)
}

/// Under `--durable`, a fresh WAL directory per session (a durable session
/// refuses to open over an existing manifest — that path is
/// `Session::recover`'s).
fn durability_kind() -> DurabilityKind {
    if !durable() {
        return DurabilityKind::None;
    }
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let i = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("itg-expt-wal-{}-{i}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    DurabilityKind::Wal { dir }
}

fn single_machine_cfg(algo: &str) -> EngineConfig {
    EngineConfig {
        machines: 1,
        max_supersteps: superstep_cap(algo),
        transport: transport_kind(),
        durability: durability_kind(),
        ..EngineConfig::default()
    }
}

fn cluster_cfg(algo: &str, machines: usize) -> EngineConfig {
    EngineConfig {
        machines,
        parallel: true,
        max_supersteps: superstep_cap(algo),
        transport: transport_kind(),
        durability: durability_kind(),
        ..EngineConfig::default()
    }
}

/// Table 6: single-machine PR and LP — one-shot and incremental execution
/// times, iTurboGraph vs GraphBolt, at the TWT-analogue graph.
fn table6() {
    let mut rows = Vec::new();
    for (algo, src, rule) in [
        ("PR", iturbograph::algorithms::PAGERANK, ValueRule::PageRank),
        ("LP", iturbograph::algorithms::LABEL_PROP, ValueRule::LabelProp),
    ] {
        let mut ds = if algo == "PR" {
            Dataset::rmat_directed("TWT*", 17, 61)
        } else {
            Dataset::rmat_undirected("TWT*", 17, 61)
        };

        // GraphBolt path (it consumes directed mirrored edges).
        let gb_edges = if ds.undirected {
            Dataset::mirrored(&ds.initial)
        } else {
            ds.initial.clone()
        };
        let mut gb = GraphBolt::new(rule, 10, MemoryBudget::unlimited());
        let t0 = std::time::Instant::now();
        gb.initial(ds.n, &gb_edges).expect("GrB fits in memory at TWT*");
        let gb_one = t0.elapsed().as_secs_f64();

        // iTurboGraph path (shares the same mutation stream).
        let mut session = SessionBuilder::from_config(single_machine_cfg(if algo == "PR" { "pr" } else { "lp" })).from_source(src, &ds.graph_input())
        .unwrap();
        let itbgpp_one = session.run_oneshot().secs();

        let mut gb_inc = 0.0;
        let mut itbgpp_inc = 0.0;
        for _ in 0..BATCHES {
            let batch = ds.next_batch(BATCH_SIZE, RATIO);
            let (ins, del): (Vec<_>, Vec<_>) = {
                let mut ins = Vec::new();
                let mut del = Vec::new();
                for m in batch.edges() {
                    let pairs: Vec<(u64, u64)> = if ds.undirected {
                        vec![(m.src, m.dst), (m.dst, m.src)]
                    } else {
                        vec![(m.src, m.dst)]
                    };
                    if m.is_insert() {
                        ins.extend(pairs);
                    } else {
                        del.extend(pairs);
                    }
                }
                (ins, del)
            };
            let t0 = std::time::Instant::now();
            gb.delta(&ins, &del).unwrap();
            gb_inc += t0.elapsed().as_secs_f64();

            session.apply_mutations(&batch);
            itbgpp_inc += session.run_incremental().secs();
        }
        gb_inc /= BATCHES as f64;
        itbgpp_inc /= BATCHES as f64;

        rows.push(vec![
            algo.to_string(),
            "GrB".to_string(),
            format!("{gb_one:.4}"),
            format!("{gb_inc:.4}"),
            format!("{:.2}", gb_inc / gb_one.max(1e-12)),
        ]);
        rows.push(vec![
            algo.to_string(),
            "iTbGpp".to_string(),
            format!("{itbgpp_one:.4}"),
            format!("{itbgpp_inc:.4}"),
            format!("{:.2}", itbgpp_inc / itbgpp_one.max(1e-12)),
        ]);
    }
    print_table(
        "Table 6: single-machine execution times at TWT* [sec]",
        &["algo", "system", "one-shot", "incremental", "inc/one-shot"],
        &rows,
    );
}

/// Figure 12: execution times of all six algorithms across the real-graph
/// ladder on the simulated cluster, iTurboGraph vs DD (O = out of memory).
fn fig12() {
    let machines = 5;
    let mut rows = Vec::new();
    for algo in ["pr", "lp", "wcc", "bfs", "tc", "lcc"] {
        for &(gname, x) in REAL_GRAPHS {
            let seed = 100 + x as u64;
            let mut ds = if algo == "pr" {
                Dataset::rmat_directed(gname, x, seed)
            } else {
                Dataset::rmat_undirected(gname, x, seed)
            };
            let src = iturbograph::algorithms::source(algo).unwrap();
            let r = run_itbgpp(
                &mut ds,
                &src,
                cluster_cfg(algo, machines),
                BATCHES,
                BATCH_SIZE,
                RATIO,
            );
            let (dd_one, dd_inc) = run_dd(algo, &ds);
            rows.push(vec![
                algo.to_uppercase(),
                gname.to_string(),
                format!("{}", ds.num_edges()),
                format!("{:.4}", r.one_shot.secs()),
                format!("{:.4}", r.mean_incremental_secs()),
                format!("{dd_one}"),
                format!("{dd_inc}"),
                format!("{:.1}x", r.speedup()),
            ]);
        }
    }
    print_table(
        &format!("Figure 12: real-graph ladder on {machines} machines [sec]"),
        &[
            "algo", "graph", "|E|", "iTbGpp-1shot", "iTbGpp-inc", "DD-1shot", "DD-inc",
            "inc-speedup",
        ],
        &rows,
    );
}

/// Run the appropriate DD baseline over the dataset's *final* pre-batch
/// state: one-shot on G_0 and one delta batch.
fn run_dd(algo: &str, ds: &Dataset) -> (Cell, Cell) {
    let edges: Vec<(u64, u64)> = if ds.undirected {
        Dataset::mirrored(&ds.initial)
    } else {
        ds.initial.clone()
    };
    match algo {
        "tc" | "lcc" => {
            // DD's self-join formulation; LCC shares the wedge arrangement.
            let mut dd = DdTriangles::new(MemoryBudget::new(DD_BUDGET));
            let t0 = std::time::Instant::now();
            match dd.initial(ds.n, &ds.initial) {
                Ok(()) => {
                    let one = t0.elapsed().as_secs_f64();
                    let muts: Vec<(u64, u64, i64)> = ds
                        .alive_edges()
                        .iter()
                        .take(BATCH_SIZE)
                        .map(|&(a, b)| (a, b, -1))
                        .collect();
                    let t0 = std::time::Instant::now();
                    match dd.delta(&muts) {
                        Ok(()) => (Cell::Secs(one), Cell::Secs(t0.elapsed().as_secs_f64())),
                        Err(_) => (Cell::Secs(one), Cell::Oom),
                    }
                }
                Err(_) => (Cell::Oom, Cell::Oom),
            }
        }
        _ => {
            let rule = match algo {
                "pr" => ValueRule::PageRank,
                "lp" => ValueRule::LabelProp,
                "wcc" => ValueRule::Wcc,
                "bfs" => ValueRule::Bfs { root: 0 },
                _ => unreachable!(),
            };
            let mut dd = DdIterative::new(rule, dd_iterations(algo), MemoryBudget::new(DD_BUDGET));
            let t0 = std::time::Instant::now();
            match dd.initial(ds.n, &edges) {
                Ok(()) => {
                    let one = t0.elapsed().as_secs_f64();
                    // One delta batch: delete a slice of alive edges.
                    let del: Vec<(u64, u64)> = ds
                        .alive_edges()
                        .iter()
                        .take(BATCH_SIZE / 2)
                        .flat_map(|&(a, b)| {
                            if ds.undirected {
                                vec![(a, b), (b, a)]
                            } else {
                                vec![(a, b)]
                            }
                        })
                        .collect();
                    let t0 = std::time::Instant::now();
                    match dd.delta(&[], &del) {
                        Ok(()) => (Cell::Secs(one), Cell::Secs(t0.elapsed().as_secs_f64())),
                        Err(_) => (Cell::Secs(one), Cell::Oom),
                    }
                }
                Err(_) => (Cell::Oom, Cell::Oom),
            }
        }
    }
}

/// Figure 13: execution times varying RMAT size (PR and TC), with DD's
/// OOM wall.
fn fig13() {
    let mut rows = Vec::new();
    for (algo, xs) in [("pr", 13..=18u32), ("tc", 12..=17u32)] {
        for x in xs {
            let seed = 200 + x as u64;
            let mut ds = if algo == "pr" {
                Dataset::rmat_directed(&format!("RMAT_{x}"), x, seed)
            } else {
                Dataset::rmat_undirected(&format!("RMAT_{x}"), x, seed)
            };
            let src = iturbograph::algorithms::source(algo).unwrap();
            let batch_size = BATCH_SIZE.min(ds.num_edges() / 10);
            let r = run_itbgpp(&mut ds, &src, cluster_cfg(algo, 5), BATCHES, batch_size, RATIO);
            let (dd_one, dd_inc) = run_dd(algo, &ds);
            rows.push(vec![
                algo.to_uppercase(),
                format!("RMAT_{x}"),
                format!("{}", ds.num_edges()),
                format!("{:.4}", r.one_shot.secs()),
                format!("{:.4}", r.mean_incremental_secs()),
                format!("{dd_one}"),
                format!("{dd_inc}"),
            ]);
        }
    }
    print_table(
        "Figure 13: varying RMAT size on 5 machines [sec]",
        &["algo", "graph", "|E|", "iTbGpp-1shot", "iTbGpp-inc", "DD-1shot", "DD-inc"],
        &rows,
    );
}

/// Figure 14: varying the simulated machine count at the largest RMAT.
fn fig14() {
    let x = 17;
    let mut rows = Vec::new();
    for algo in ["pr", "tc"] {
        for machines in [5usize, 10, 15, 20, 25] {
            let seed = 300 + machines as u64;
            let mut ds = if algo == "pr" {
                Dataset::rmat_directed(&format!("RMAT_{x}"), x, seed)
            } else {
                Dataset::rmat_undirected(&format!("RMAT_{x}"), x, seed)
            };
            let src = iturbograph::algorithms::source(algo).unwrap();
            let r = run_itbgpp(
                &mut ds,
                &src,
                cluster_cfg(algo, machines),
                BATCHES,
                BATCH_SIZE,
                RATIO,
            );
            // On a single-core host the simulated workers cannot deliver
            // wall-clock parallelism; the machine-scaling effects that
            // survive the substitution are the per-machine work share and
            // the network volume (see EXPERIMENTS.md).
            rows.push(vec![
                algo.to_uppercase(),
                format!("{machines}"),
                format!("{:.4}", r.one_shot.secs()),
                format!("{:.4}", r.mean_incremental_secs()),
                format!("{}", r.one_shot.io.walks_enumerated / machines as u64),
                format!("{}", r.one_shot.io.net_bytes),
            ]);
        }
    }
    print_table(
        &format!("Figure 14: varying machines at RMAT_{x}"),
        &[
            "algo",
            "machines",
            "one-shot [s]",
            "incremental [s]",
            "walks/machine",
            "net bytes",
        ],
        &rows,
    );
}

/// Figure 15 (a): normalized incremental time vs insert:delete ratio.
fn fig15a() {
    let ratios: [(u32, &str); 5] = [
        (100, "100:0"),
        (75, "75:25"),
        (50, "50:50"),
        (25, "25:75"),
        (0, "0:100"),
    ];
    let mut rows = Vec::new();
    for algo in ["pr", "wcc", "tc"] {
        let mut base_time = None;
        let mut row = vec![algo.to_uppercase()];
        for (pct, _label) in ratios {
            let seed = 400 + pct as u64;
            let mut ds = if algo == "pr" {
                Dataset::twt_upscaled_directed("TWT25*", 14, 4, seed)
            } else {
                Dataset::twt_upscaled("TWT25*", 14, 4, seed)
            };
            let src = iturbograph::algorithms::source(algo).unwrap();
            let r = run_itbgpp(&mut ds, &src, cluster_cfg(algo, 4), BATCHES, BATCH_SIZE, pct);
            let t = r.mean_incremental_secs();
            let base = *base_time.get_or_insert(t);
            row.push(format!("{:.2}", t / base));
        }
        rows.push(row);
    }
    print_table(
        "Figure 15 (a): incremental time normalized to the insertion-only workload",
        &["algo", "100:0", "75:25", "50:50", "25:75", "0:100"],
        &rows,
    );
}

/// Figure 15 (b): throughput (mutations/sec) vs batch size, normalized to
/// the smallest batch.
fn fig15b() {
    let sizes = [10usize, 50, 200, 1000, 4000];
    let mut rows = Vec::new();
    for algo in ["pr", "wcc", "tc"] {
        let mut base = None;
        let mut row = vec![algo.to_uppercase()];
        for &size in &sizes {
            let seed = 500 + size as u64;
            let mut ds = if algo == "pr" {
                Dataset::twt_upscaled_directed("TWT25*", 14, 4, seed)
            } else {
                Dataset::twt_upscaled("TWT25*", 14, 4, seed)
            };
            let src = iturbograph::algorithms::source(algo).unwrap();
            let r = run_itbgpp(&mut ds, &src, cluster_cfg(algo, 4), 2, size, RATIO);
            let throughput = size as f64 / r.mean_incremental_secs().max(1e-12);
            let b = *base.get_or_insert(throughput);
            row.push(format!("{:.1}", throughput / b));
        }
        rows.push(row);
    }
    print_table(
        "Figure 15 (b): throughput vs |ΔG|, normalized to the smallest batch",
        &["algo", "10", "50", "200", "1000", "4000"],
        &rows,
    );
}

/// Figure 16 (a): optimization ablation for the multi-hop NGA (TC, LCC) —
/// speedup of each incremental configuration over the one-shot query.
fn fig16a() {
    let configs: [(&str, OptFlags); 4] = [
        ("BASE", OptFlags::none()),
        (
            "TR",
            OptFlags {
                traversal_reorder: true,
                ..OptFlags::none()
            },
        ),
        (
            "TR+NP",
            OptFlags {
                traversal_reorder: true,
                neighbor_prune: true,
                ..OptFlags::none()
            },
        ),
        ("TR+NP+SWS", OptFlags::default()),
    ];
    let mut rows = Vec::new();
    for algo in ["tc", "lcc"] {
        for (label, opts) in configs {
            let mut ds = Dataset::twt_upscaled("TWT25*", 14, 4, 600);
            let src = iturbograph::algorithms::source(algo).unwrap();
            let mut cfg = cluster_cfg(algo, 4);
            cfg.opts = opts;
            // A smaller pool stresses the IO-sharing effect of SWS.
            cfg.buffer_pool_bytes = 256 << 10;
            let r = run_itbgpp(&mut ds, &src, cfg, BATCHES, BATCH_SIZE, RATIO);
            rows.push(vec![
                algo.to_uppercase(),
                label.to_string(),
                format!("{:.4}", r.one_shot.secs()),
                format!("{:.4}", r.mean_incremental_secs()),
                format!("{:.1}x", r.speedup()),
                format!(
                    "{}",
                    r.incremental.iter().map(|m| m.io.walks_enumerated).sum::<u64>()
                        / r.incremental.len() as u64
                ),
            ]);
        }
    }
    print_table(
        "Figure 16 (a): Δ-walk optimization ablation (speedup over one-shot)",
        &["algo", "opts", "one-shot", "incremental", "speedup", "Δ-walks"],
        &rows,
    );
}

/// Figure 16 (b): the MIN-with-counting (CNT) optimization for WCC and BFS
/// across insert:delete ratios.
fn fig16b() {
    let ratios: [(u32, &str); 3] = [(100, "100:0"), (50, "50:50"), (0, "0:100")];
    let mut rows = Vec::new();
    for algo in ["wcc", "bfs"] {
        for (pct, label) in ratios {
            let mut times = Vec::new();
            let mut recomputes = Vec::new();
            for cnt in [false, true] {
                let seed = 700 + pct as u64;
                let mut ds = Dataset::twt_upscaled("TWT25*", 14, 4, seed);
                let src = iturbograph::algorithms::source(algo).unwrap();
                let mut cfg = cluster_cfg(algo, 4);
                cfg.opts.min_count = cnt;
                let r = run_itbgpp(&mut ds, &src, cfg, BATCHES, BATCH_SIZE, pct);
                times.push(r.mean_incremental_secs());
                recomputes.push(
                    r.incremental.iter().map(|m| m.recomputed_vertices).sum::<u64>(),
                );
            }
            rows.push(vec![
                algo.to_uppercase(),
                label.to_string(),
                format!("{:.4}", times[0]),
                format!("{:.4}", times[1]),
                format!("{:.2}x", times[0] / times[1].max(1e-12)),
                format!("{}", recomputes[0]),
                format!("{}", recomputes[1]),
            ]);
        }
    }
    print_table(
        "Figure 16 (b): CNT optimization speedup (Min recompute avoidance)",
        &[
            "algo",
            "ins:del",
            "no-CNT [s]",
            "CNT [s]",
            "speedup",
            "recomp(no-CNT)",
            "recomp(CNT)",
        ],
        &rows,
    );
}

/// Intra-partition thread scaling: the walk-enumeration phases of a single
/// simulated machine on a skewed-degree RMAT graph, at 1/2/4 worker
/// threads. All three rows compute identical results (the chunk merge is
/// deterministic); only the wall clock and the scheduling counters differ.
/// Wall-clock speedup requires host cores — on a single-core host the rows
/// converge and the table degenerates to an overhead measurement, which
/// the footer calls out.
fn scaling() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut rows = Vec::new();
    for algo in ["tc", "pr"] {
        let mut base: Option<f64> = None;
        for threads in [1usize, 2, 4] {
            let seed = 900;
            let mut ds = if algo == "pr" {
                Dataset::rmat_directed("RMAT_15", 15, seed)
            } else {
                Dataset::rmat_undirected("RMAT_15", 15, seed)
            };
            let src = iturbograph::algorithms::source(algo).unwrap();
            let cfg = single_machine_cfg(algo).with_threads(threads);
            let r = run_itbgpp(&mut ds, &src, cfg, BATCHES, BATCH_SIZE, RATIO);
            let one = r.one_shot.secs();
            let b = *base.get_or_insert(one);
            rows.push(vec![
                algo.to_uppercase(),
                format!("{threads}"),
                format!("{one:.4}"),
                format!("{:.4}", r.mean_incremental_secs()),
                format!("{:.2}x", b / one.max(1e-12)),
                format!("{}", r.one_shot.parallel.chunks),
                format!("{}", r.one_shot.parallel.imbalance()),
            ]);
        }
    }
    print_table(
        &format!("Thread scaling on 1 machine, {cores} host core(s): one-shot speedup vs 1 thread"),
        &[
            "algo",
            "threads",
            "one-shot [s]",
            "incremental [s]",
            "speedup",
            "chunks",
            "imbalance",
        ],
        &rows,
    );
    if cores < 4 {
        println!(
            "note: host exposes {cores} core(s); thread speedups are bounded by the hardware."
        );
    }
}

/// Figure 17: incremental PR and LP over many snapshots under the three
/// delta-maintenance strategies.
fn fig17() {
    let snapshots = 120;
    let policies: [(&str, MaintenancePolicy); 3] = [
        ("NoMerge", MaintenancePolicy::NoMerge),
        ("Periodic(60)", MaintenancePolicy::Periodic(60)),
        ("Cost", MaintenancePolicy::CostBased),
    ];
    let mut rows = Vec::new();
    for algo in ["pr", "lp"] {
        for (label, policy) in policies {
            let seed = 800;
            let mut ds = if algo == "pr" {
                Dataset::rmat_directed("TWT*", 15, seed)
            } else {
                Dataset::rmat_undirected("TWT*", 15, seed)
            };
            let src = iturbograph::algorithms::source(algo).unwrap();
            let mut cfg = single_machine_cfg(algo);
            cfg.maintenance = policy;
            let mut session =
                SessionBuilder::from_config(cfg).from_source(&src, &ds.graph_input()).unwrap();
            session.run_oneshot();
            let mut times = Vec::with_capacity(snapshots);
            for _ in 0..snapshots {
                let batch = ds.next_batch(200, RATIO);
                session.apply_mutations(&batch);
                times.push(session.run_incremental().secs());
            }
            let early: f64 = times[..10].iter().sum::<f64>() / 10.0;
            let late: f64 = times[snapshots - 10..].iter().sum::<f64>() / 10.0;
            rows.push(vec![
                algo.to_uppercase(),
                label.to_string(),
                format!("{early:.4}"),
                format!("{late:.4}"),
                format!("{:.2}x", late / early.max(1e-12)),
                format!("{}", session.store_bytes()),
            ]);
        }
    }
    print_table(
        &format!("Figure 17: incremental time over {snapshots} snapshots by maintenance policy"),
        &[
            "algo",
            "policy",
            "first-10 [s]",
            "last-10 [s]",
            "slowdown",
            "store bytes",
        ],
        &rows,
    );
}

/// `expt serve`: shared vs isolated standing-query maintenance (DESIGN.md
/// §11, not a paper artifact). K structurally identical TC queries are
/// registered in one `QueryRegistry` — landing in one share group, so the
/// Δ-plan runs once per batch — and the same K queries are driven as K
/// isolated sessions over the same mutation history. Reported per K:
/// steady-state maintenance wall clock (one-shot excluded on both sides),
/// the `share/hit` count, and the speedup. A final row mixes identical,
/// alpha-renamed, overlapping, and disjoint programs to exercise the
/// grouping and the `share/unique_subplans` counter. Sessions are always
/// non-durable here: share groups would collide on a single WAL directory.
fn serve_expt() {
    let seed = 1100;
    let src = iturbograph::algorithms::source("tc").unwrap();
    let cfg = EngineConfig {
        machines: 1,
        max_supersteps: superstep_cap("tc"),
        transport: transport_kind(),
        ..EngineConfig::default()
    };
    // One workload for every row: the initial 90% graph plus BATCHES
    // mutation batches, materialized once so shared and isolated runs see
    // byte-identical histories.
    let mut ds = Dataset::rmat_undirected("RMAT_11", 11, seed);
    let input = ds.graph_input();
    let batches: Vec<MutationBatch> = (0..BATCHES)
        .map(|_| ds.next_batch(BATCH_SIZE, RATIO))
        .collect();

    let mut rows = Vec::new();
    for k in [1usize, 2, 4, 8] {
        // Isolated: K sessions, each applying and refreshing every batch.
        let mut sessions: Vec<Session> = (0..k)
            .map(|_| {
                SessionBuilder::from_config(cfg.clone())
                    .from_source(&src, &input)
                    .expect("program compiles")
            })
            .collect();
        for s in &mut sessions {
            s.run_oneshot();
        }
        let t0 = std::time::Instant::now();
        for batch in &batches {
            for s in &mut sessions {
                s.apply_mutations(batch);
                s.run_incremental();
            }
        }
        let isolated = t0.elapsed().as_secs_f64();

        // Shared: one registry, K registrations, one share group.
        let mut reg = QueryRegistry::new(&input, cfg.clone(), ServeLimits::default());
        let ids: Vec<QueryId> = (0..k)
            .map(|i| reg.register(&format!("tc{i}"), &src).expect("admitted"))
            .collect();
        assert_eq!(reg.num_groups(), 1, "identical programs must share");
        let t0 = std::time::Instant::now();
        for batch in &batches {
            reg.commit(batch).expect("batch admitted");
        }
        let shared = t0.elapsed().as_secs_f64();
        // Sharing must not change any query's bytes.
        let oracle = sessions[0].dynamic_state_image();
        for &id in &ids {
            assert_eq!(
                reg.dynamic_state_image(id).expect("registered"),
                oracle,
                "shared result diverged from isolated"
            );
        }
        rows.push(vec![
            format!("{k}"),
            format!("{isolated:.4}"),
            format!("{shared:.4}"),
            format!("{:.2}x", isolated / shared.max(1e-12)),
            format!("{}", reg.share_hits()),
        ]);
    }
    print_table(
        &format!(
            "Standing-query maintenance: K identical TC queries, {BATCHES} batches of {BATCH_SIZE} \
             (isolated vs shared registry)"
        ),
        &["K", "isolated [s]", "shared [s]", "speedup", "share/hit"],
        &rows,
    );

    // Mixed registration: 2× tc (identical), an alpha-renamed tc (same
    // structural hash), a doubled-action tc (same walk shape, different
    // program), and wcc (disjoint).
    let renamed = src
        .replace("cnts", "triangles")
        .replace("u1", "w")
        .replace("u2", "x")
        .replace("u3", "y")
        .replace("u4", "z");
    let doubled = src.replace("Accumulate(1)", "Accumulate(2)");
    let wcc = iturbograph::algorithms::source("wcc").unwrap();
    let mut reg = QueryRegistry::new(&input, cfg, ServeLimits::default());
    for (name, s) in [
        ("tc-a", src.as_str()),
        ("tc-b", src.as_str()),
        ("tc-renamed", renamed.as_str()),
        ("tc-doubled", doubled.as_str()),
        ("wcc", wcc.as_str()),
    ] {
        reg.register(name, s).expect("admitted");
    }
    for batch in &batches {
        reg.commit(batch).expect("batch admitted");
    }
    println!(
        "mixed workload: {} queries -> {} shared groups, {} unique walk shapes, \
         {} share hits over {} batches",
        reg.num_queries(),
        reg.num_groups(),
        reg.unique_subplans(),
        reg.share_hits(),
        BATCHES,
    );
}
