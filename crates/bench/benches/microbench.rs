//! Criterion microbenchmarks for the core data structures and the hot
//! execution paths: walk enumeration (one-shot and Δ), store operations,
//! accumulate variants, the compiler front end, and the baselines'
//! arrangement layer.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use itg_baselines::{DdTriangles, MemoryBudget};
use itg_bench::Dataset;
use iturbograph::graphgen::{generate, RmatConfig};
use iturbograph::gsa::value::{ColumnData, PrimType, ValueType};
use iturbograph::prelude::*;
use iturbograph::store::{AttrStore, IoStats, MaintenancePolicy};

fn bench_walk_enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("walk_enumeration");
    for x in [10u32, 12] {
        let ds = Dataset::rmat_undirected("b", x, 42);
        group.bench_with_input(BenchmarkId::new("tc_oneshot", x), &ds, |b, ds| {
            b.iter(|| {
                let mut s = SessionBuilder::from_config(EngineConfig::default()).from_source(iturbograph::algorithms::TRIANGLE_COUNT, &ds.graph_input())
                .unwrap();
                s.run_oneshot();
                s.global_value("cnts", None).unwrap()
            });
        });
    }
    group.finish();
}

fn bench_delta_walks(c: &mut Criterion) {
    let mut group = c.benchmark_group("delta_walks");
    group.sample_size(20);
    for (label, opts) in [("base", OptFlags::none()), ("optimized", OptFlags::default())] {
        group.bench_function(BenchmarkId::new("tc_incremental", label), |b| {
            b.iter_batched(
                || {
                    let mut ds = Dataset::rmat_undirected("b", 11, 7);
                    let cfg = EngineConfig {
                        opts,
                        ..EngineConfig::default()
                    };
                    let mut s = SessionBuilder::from_config(cfg).from_source(iturbograph::algorithms::TRIANGLE_COUNT, &ds.graph_input())
                    .unwrap();
                    s.run_oneshot();
                    let batch = ds.next_batch(50, 75);
                    (s, batch)
                },
                |(mut s, batch)| {
                    s.apply_mutations(&batch);
                    s.run_incremental()
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

/// Intra-partition thread scaling on a skewed-degree RMAT graph: the same
/// enumeration at 1/2/4 threads per machine. On a multi-core host the
/// 4-thread rows should run ≥1.5× faster than 1-thread; on a single-core
/// host the times converge (the chunk/merge overhead is the difference).
fn bench_intra_partition_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("intra_partition_scaling");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        let ds = Dataset::rmat_undirected("b", 12, 42);
        group.bench_with_input(
            BenchmarkId::new("tc_oneshot_threads", threads),
            &ds,
            |b, ds| {
                b.iter(|| {
                    let mut s = SessionBuilder::from_config(EngineConfig::default().with_threads(threads)).from_source(iturbograph::algorithms::TRIANGLE_COUNT, &ds.graph_input())
                    .unwrap();
                    s.run_oneshot();
                    s.global_value("cnts", None).unwrap()
                });
            },
        );
    }
    group.finish();
}

fn bench_store(c: &mut Criterion) {
    let mut group = c.benchmark_group("store");
    group.bench_function("attr_store_record_and_load", |b| {
        b.iter(|| {
            let mut st = AttrStore::new(
                vec![ValueType::Prim(PrimType::Long)],
                4096,
                MaintenancePolicy::CostBased,
                IoStats::new(),
            );
            for t in 0..20usize {
                let vids: Vec<u32> = (0..128).map(|i| (i * 13 + t as u32) % 4096).collect();
                let col = ColumnData::Long(vids.iter().map(|&v| v as i64).collect());
                st.record_run(t, 1, vids, vec![col]);
            }
            let mut arr = st.materialize_init();
            st.load_superstep(1, &mut arr);
            arr[0].len()
        });
    });
    group.bench_function("edge_store_scan", |b| {
        let cfg = RmatConfig::paper_scale(13, 3);
        let edges = generate(&cfg);
        let input = GraphInput::directed(edges);
        let g = iturbograph::engine::ClusterGraph::load(&input, 1, 16 << 20, 4096);
        b.iter(|| {
            let mut total = 0u64;
            for v in 0..g.num_vertices() as u64 {
                g.for_each_neighbor(
                    0,
                    v,
                    iturbograph::gsa::EdgeDir::Out,
                    iturbograph::store::View::New,
                    |_| total += 1,
                );
            }
            total
        });
    });
    group.finish();
}

fn bench_compiler(c: &mut Criterion) {
    c.bench_function("compile_triangle_counting", |b| {
        b.iter(|| compile_source(iturbograph::algorithms::TRIANGLE_COUNT).unwrap());
    });
    c.bench_function("compile_pagerank", |b| {
        b.iter(|| compile_source(iturbograph::algorithms::PAGERANK).unwrap());
    });
}

fn bench_accumulate(c: &mut Criterion) {
    use iturbograph::gsa::accm::{AccmOp, CountedAccm};
    use iturbograph::gsa::Value;
    let mut group = c.benchmark_group("accumulate");
    group.bench_function("sum_fold_10k", |b| {
        b.iter(|| {
            let mut acc = Value::Long(0);
            for i in 0..10_000i64 {
                acc = AccmOp::Sum.combine(&acc, &Value::Long(i), PrimType::Long);
            }
            acc
        });
    });
    group.bench_function("counted_min_10k", |b| {
        b.iter(|| {
            let mut acc = CountedAccm::identity(AccmOp::Min, PrimType::Long);
            for i in (0..10_000i64).rev() {
                acc.insert(AccmOp::Min, PrimType::Long, &Value::Long(i % 977));
            }
            acc.count
        });
    });
    group.finish();
}

fn bench_baseline_arrangement(c: &mut Criterion) {
    c.bench_function("dd_wedge_arrangement_rmat10", |b| {
        let ds = Dataset::rmat_undirected("b", 10, 5);
        b.iter(|| {
            let mut dd = DdTriangles::new(MemoryBudget::unlimited());
            dd.initial(ds.n, &ds.initial).unwrap();
            dd.wedge_entries()
        });
    });
}

/// Observability overhead: the same one-shot PageRank with the recorder
/// disabled (the default — every handle a single-branch no-op) vs enabled
/// (span clocks + relaxed atomic adds). The acceptance bound for this PR is
/// `enabled/disabled < 1.02` on the disabled side, i.e. a disabled recorder
/// must cost nothing measurable; the enabled rows document the cost of
/// turning profiling on.
fn bench_obs_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_overhead");
    group.sample_size(20);
    for (label, enabled) in [("disabled", false), ("enabled", true)] {
        let ds = Dataset::rmat_directed("b", 12, 42);
        group.bench_with_input(BenchmarkId::new("pr_oneshot", label), &ds, |b, ds| {
            b.iter(|| {
                let cfg = EngineConfig {
                    max_supersteps: 10,
                    obs: if enabled {
                        itg_obs::Recorder::enabled()
                    } else {
                        itg_obs::Recorder::disabled()
                    },
                    ..EngineConfig::default()
                };
                let mut s = SessionBuilder::from_config(cfg).from_source(iturbograph::algorithms::PAGERANK, &ds.graph_input())
                .unwrap();
                s.run_oneshot().supersteps
            });
        });
    }
    group.finish();
}

/// WAL overhead: the same one-shot + incremental PageRank workload with
/// durability off vs on. The `durability_none` rows pin the non-durable
/// fast path — `DurabilityKind::None` must stay at the pre-WAL baseline
/// (no regression from adding the durability layer); the `durability_wal`
/// rows document the fsync-per-command price of crash safety. The
/// `group_commit_*` rows measure how a leader window amortizes that price
/// across concurrent committers.
fn bench_wal_overhead(c: &mut Criterion) {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT_DIR: AtomicU64 = AtomicU64::new(0);
    let mut group = c.benchmark_group("wal_overhead");
    group.sample_size(10);
    for (label, durable) in [("durability_none", false), ("durability_wal", true)] {
        group.bench_function(BenchmarkId::new("pr_oneshot_plus_batch", label), |b| {
            b.iter_batched(
                || {
                    let durability = if durable {
                        let i = NEXT_DIR.fetch_add(1, Ordering::Relaxed);
                        let dir = std::env::temp_dir()
                            .join(format!("itg-bench-wal-{}-{i}", std::process::id()));
                        let _ = std::fs::remove_dir_all(&dir);
                        DurabilityKind::Wal { dir }
                    } else {
                        DurabilityKind::None
                    };
                    let mut ds = Dataset::rmat_directed("b", 11, 7);
                    let batch = ds.next_batch(50, 75);
                    (ds, batch, durability)
                },
                |(ds, batch, durability)| {
                    let cfg = EngineConfig {
                        max_supersteps: 10,
                        durability: durability.clone(),
                        ..EngineConfig::default()
                    };
                    let mut s = SessionBuilder::from_config(cfg).from_source(iturbograph::algorithms::PAGERANK, &ds.graph_input())
                    .unwrap();
                    s.run_oneshot();
                    s.apply_mutations(&batch);
                    let m = s.run_incremental();
                    if let DurabilityKind::Wal { dir } = &durability {
                        let _ = std::fs::remove_dir_all(dir);
                    }
                    m
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }

    // Group commit: the same 64-record append history written by one
    // committer with no window (fsync per append) vs four concurrent
    // committers sharing leader flushes through a 100 µs window. The
    // deterministic ≥2× fsync-count bound is pinned by the store's
    // `group_commit_amortizes_fsyncs_at_depth_4` test; these rows document
    // the wall-clock side for EXPERIMENTS.md.
    use iturbograph::store::wal::{Wal, WalEntry, WalOptions};
    for (label, threads, window_us) in
        [("group_commit_depth1", 1u64, 0u64), ("group_commit_depth4", 4, 100)]
    {
        group.bench_function(BenchmarkId::new("batch_append_64", label), |b| {
            b.iter_batched(
                || {
                    let i = NEXT_DIR.fetch_add(1, Ordering::Relaxed);
                    let dir = std::env::temp_dir()
                        .join(format!("itg-bench-gc-{}-{i}", std::process::id()));
                    let _ = std::fs::remove_dir_all(&dir);
                    dir
                },
                |dir| {
                    let (wal, _) = Wal::open_with(
                        &dir,
                        WalOptions {
                            segment_bytes: 8 << 20,
                            group_commit_us: window_us,
                        },
                    )
                    .unwrap();
                    let per_thread = 64 / threads;
                    std::thread::scope(|s| {
                        for t in 0..threads {
                            let wal = wal.clone();
                            s.spawn(move || {
                                for i in 0..per_thread {
                                    wal.append(&WalEntry::Batch(MutationBatch::new(vec![
                                        EdgeMutation::insert(t, i),
                                    ])))
                                    .unwrap();
                                }
                            });
                        }
                    });
                    let fsyncs = wal.stats().fsyncs;
                    let _ = std::fs::remove_dir_all(&dir);
                    fsyncs
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

/// The specialization + NGW-cache acceptance bench: the same incremental
/// PageRank maintenance under (a) the generic boxed-`Value` accumulate
/// path with the segment cache off and (b) the monomorphized f64 lanes
/// with an unbounded cache. The PR's acceptance bound is a ≥2× speedup of
/// (b) over (a); EXPERIMENTS.md records the measured ratio.
fn bench_traverse_specialized(c: &mut Criterion) {
    let mut group = c.benchmark_group("traverse_specialized");
    group.sample_size(10);
    for (label, specialize, cache_bytes) in [
        ("generic_nocache", false, 0u64),
        ("specialized_cached", true, u64::MAX),
    ] {
        group.bench_function(BenchmarkId::new("pr_incremental", label), |b| {
            b.iter_batched(
                || {
                    let mut ds = Dataset::rmat_directed("b", 11, 7);
                    let cfg = EngineConfig {
                        max_supersteps: 10,
                        opts: OptFlags {
                            specialize,
                            ..OptFlags::default()
                        },
                        cache_bytes,
                        ..EngineConfig::default()
                    };
                    let mut s = SessionBuilder::from_config(cfg)
                        .from_source(iturbograph::algorithms::PAGERANK, &ds.graph_input())
                        .unwrap();
                    s.run_oneshot();
                    let batches: Vec<_> = (0..3).map(|_| ds.next_batch(150, 225)).collect();
                    (s, batches)
                },
                |(mut s, batches)| {
                    let mut supersteps = 0;
                    for batch in &batches {
                        s.apply_mutations(batch);
                        supersteps += s.run_incremental().supersteps;
                    }
                    supersteps
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn bench_graphgen(c: &mut Criterion) {
    c.bench_function("rmat_generate_2e14", |b| {
        b.iter(|| generate(&RmatConfig::paper_scale(14, 9)).len());
    });
}

criterion_group!(
    benches,
    bench_walk_enumeration,
    bench_delta_walks,
    bench_intra_partition_scaling,
    bench_store,
    bench_compiler,
    bench_accumulate,
    bench_baseline_arrangement,
    bench_obs_overhead,
    bench_wal_overhead,
    bench_traverse_specialized,
    bench_graphgen,
);
criterion_main!(benches);
