//! Front-end corpus tests: a battery of valid and invalid `L_NGA`
//! programs exercising the grammar and the type rules end to end.

use itg_lnga::{frontend, parse};

fn ok(src: &str) {
    frontend(src).unwrap_or_else(|e| panic!("expected to check, got: {e}\n{src}"));
}

fn fails_with(src: &str, needle: &str) {
    let err = frontend(src).expect_err("expected failure").to_string();
    assert!(
        err.contains(needle),
        "error `{err}` does not mention `{needle}`"
    );
}

#[test]
fn minimal_program() {
    ok("Vertex (id, active, nbrs)
        Initialize (u): { }
        Traverse (u): { }
        Update (u): { }");
}

#[test]
fn all_primitive_types_declare() {
    ok("Vertex (id, active, nbrs,
                a: bool, b: int, c: long, d: float, e: double,
                f: Array<double, 8>,
                g: Accm<int, SUM>, h: Accm<long, MIN>, i: Accm<double, MAX>,
                j: Accm<bool, OR>, k: Accm<bool, AND>, l: Accm<float, PROD>)
        Initialize (u): { }
        Traverse (u): { }
        Update (u): { }");
}

#[test]
fn comments_everywhere() {
    ok("// leading comment
        Vertex (id, active, nbrs /* trailing */, x: long)
        Initialize (u): { u.x = 1; /* mid */ }
        Traverse (u): { }
        Update (u): { } // done");
}

#[test]
fn deeply_nested_traversal() {
    ok("Vertex (id, active, nbrs)
        GlobalVariable (c: Accm<long, SUM>)
        Initialize (u1): { u1.active = true; }
        Traverse (u1): {
            For u2 in u1.nbrs Where (u1 < u2) {
                For u3 in u2.nbrs {
                    For u4 in u3.nbrs {
                        For u5 in u4.nbrs Where (u5 == u1) { c.Accumulate(1); }
                    }
                }
            }
        }
        Update (u1): { }");
}

#[test]
fn mixed_direction_adjacency() {
    ok("Vertex (id, active, out_nbrs, in_nbrs, out_degree, in_degree,
                s: Accm<long, SUM>)
        Initialize (u): { }
        Traverse (u): {
            For v in u.out_nbrs { v.s.Accumulate(u.in_degree); }
            For w in u.in_nbrs { w.s.Accumulate(u.out_degree); }
        }
        Update (u): { }");
}

#[test]
fn else_if_chains() {
    ok("Vertex (id, active, nbrs, x: long)
        Initialize (u): {
            If (u.id > 10) { u.x = 1; }
            Else { If (u.id > 5) { u.x = 2; } Else { u.x = 3; } }
        }
        Traverse (u): { }
        Update (u): { }");
}

#[test]
fn unary_operators_and_precedence() {
    ok("Vertex (id, active, nbrs, x: long, b: bool)
        Initialize (u): {
            u.x = -u.id * 2 + 4 % 3;
            u.b = !(u.id > 3) && true || false;
        }
        Traverse (u): { }
        Update (u): { }");
}

#[test]
fn where_must_be_boolean() {
    fails_with(
        "Vertex (id, active, nbrs)
         Initialize (u): { }
         Traverse (u): { For v in u.nbrs Where (u.id + 1) { } }
         Update (u): { }",
        "boolean",
    );
}

#[test]
fn duplicate_attribute_rejected() {
    fails_with(
        "Vertex (id, active, nbrs, x: long, x: double)
         Initialize (u): { }
         Traverse (u): { }
         Update (u): { }",
        "duplicate",
    );
}

#[test]
fn shadowing_vertex_var_with_let_rejected() {
    fails_with(
        "Vertex (id, active, nbrs)
         Initialize (u): { Let u = 3; }
         Traverse (u): { }
         Update (u): { }",
        "shadows",
    );
}

#[test]
fn rebinding_loop_variable_rejected() {
    fails_with(
        "Vertex (id, active, nbrs)
         Initialize (u): { }
         Traverse (u): { For v in u.nbrs { For v in u.nbrs { } } }
         Update (u): { }",
        "already bound",
    );
}

#[test]
fn accumulate_into_non_accumulator_rejected() {
    fails_with(
        "Vertex (id, active, nbrs, x: long)
         Initialize (u): { }
         Traverse (u): { For v in u.nbrs { v.x.Accumulate(1); } }
         Update (u): { }",
        "not an accumulator",
    );
}

#[test]
fn assigning_neighbor_attrs_rejected() {
    // Only the UDF parameter's attributes can be assigned (Update).
    fails_with(
        "Vertex (id, active, nbrs, x: long)
         Initialize (u): { }
         Traverse (u): { }
         Update (u): { v.x = 1; }",
        "only the UDF parameter",
    );
}

#[test]
fn bad_accm_operator_rejected() {
    let err = parse(
        "Vertex (id, active, nbrs, s: Accm<long, MEDIAN>)
         Initialize (u): { } Traverse (u): { } Update (u): { }",
    )
    .unwrap_err();
    assert!(err.to_string().contains("Abelian"));
}

#[test]
fn array_size_must_be_positive() {
    let err = parse(
        "Vertex (id, active, nbrs, a: Array<long, 0>)
         Initialize (u): { } Traverse (u): { } Update (u): { }",
    )
    .unwrap_err();
    assert!(err.to_string().contains("positive"));
}

#[test]
fn spans_point_at_the_problem() {
    let err = frontend(
        "Vertex (id, active, nbrs)\nInitialize (u): { }\nTraverse (u): {\n  bogus.Accumulate(1);\n}\nUpdate (u): { }",
    )
    .unwrap_err();
    assert_eq!(err.line, 4);
}

#[test]
fn global_read_in_update_only() {
    ok("Vertex (id, active, nbrs, x: long)
        GlobalVariable (g: Accm<long, SUM>)
        Initialize (u): { }
        Traverse (u): { g.Accumulate(1); }
        Update (u): { u.x = g; }");
    fails_with(
        "Vertex (id, active, nbrs, s: Accm<long, SUM>)
         GlobalVariable (g: Accm<long, SUM>)
         Initialize (u): { }
         Traverse (u): { For v in u.nbrs { v.s.Accumulate(g); } }
         Update (u): { }",
        "Update",
    );
}
