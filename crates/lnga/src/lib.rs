//! # itg-lnga — the `L_NGA` domain-specific language (paper §3)
//!
//! An imperative programming interface for neighbor-centric graph analytics
//! (NGA): programs declare a vertex type and global variables, then define
//! the `Initialize` / `Traverse` / `Update` UDFs of the BSP execution
//! semantics (Figure 4). Multi-hop traversals are written as nested
//! `For ... in ... Where (...)` loops; accumulations use `Accm<prim, OP>`
//! attributes with Abelian-monoid operators.
//!
//! Front-end pipeline: [`lexer::lex`] → [`parser::parse`] → [`check::check`]
//! produces a [`CheckedProgram`] whose symbol tables the compiler crate
//! lowers into Graph Streaming Algebra plans.

pub mod ast;
pub mod check;
pub mod diag;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod token;

pub use ast::{AstExpr, AttrDecl, DeclType, Place, Predefined, Program, Stmt, Udf};
pub use check::{check, AccmInfo, AttrInfo, CheckedProgram, Symbols};
pub use diag::LngaError;
pub use parser::parse;
pub use printer::{print_expr, print_program};

/// Parse and type-check a program in one call.
pub fn frontend(src: &str) -> Result<CheckedProgram, LngaError> {
    check(parse(src)?)
}
