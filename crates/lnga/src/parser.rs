//! Recursive-descent parser for `L_NGA`.
//!
//! Grammar sketch (Figure 4/5 of the paper, with braces delimiting blocks):
//!
//! ```text
//! program     := vertex_decl global_decl? udf*            (Initialize/Traverse/Update)
//! vertex_decl := "Vertex" "(" decl_item ("," decl_item)* ")"
//! global_decl := "GlobalVariable" "(" decl_item ("," decl_item)* ")"
//! decl_item   := IDENT (":" type)?
//! type        := prim | "Accm" "<" prim "," IDENT ">" | "Array" "<" prim "," INT ">"
//! udf         := ("Initialize"|"Traverse"|"Update") "(" IDENT ")" ":" block
//! block       := "{" stmt* "}" | stmt
//! stmt        := "Let" IDENT "=" expr ";"
//!              | place "=" expr ";"
//!              | place "." "Accumulate" "(" expr ")" ";"
//!              | "For" IDENT "in" IDENT "." IDENT ("Where" "(" expr ")")? block
//!              | "If" "(" expr ")" block ("Else" block)?
//! ```
//!
//! Expression precedence, loosest to tightest: `||`, `&&`, comparisons,
//! additive, multiplicative, unary, postfix (`.attr`, `[idx]`, calls).

use crate::ast::*;
use crate::diag::LngaError;
use crate::lexer::lex;
use crate::token::{Span, Tok, Token};
use itg_gsa::accm::AccmOp;
use itg_gsa::expr::{BinOp, UnOp};
use itg_gsa::value::PrimType;

/// Parse a complete `L_NGA` program.
pub fn parse(src: &str) -> Result<Program, LngaError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    p.program()
}

struct Parser {
    toks: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn span(&self) -> Span {
        self.toks[self.pos].span
    }

    fn bump(&mut self) -> Token {
        let t = self.toks[self.pos].clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, want: &Tok) -> Result<Span, LngaError> {
        if self.peek() == want {
            Ok(self.bump().span)
        } else {
            Err(LngaError::parse(
                self.span(),
                format!("expected {want}, found {}", self.peek()),
            ))
        }
    }

    fn eat_ident(&mut self) -> Result<(String, Span), LngaError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                let span = self.bump().span;
                Ok((s, span))
            }
            other => Err(LngaError::parse(
                self.span(),
                format!("expected identifier, found {other}"),
            )),
        }
    }

    fn program(&mut self) -> Result<Program, LngaError> {
        let mut prog = Program::default();
        let mut saw_vertex = false;
        let (mut saw_init, mut saw_trav, mut saw_upd) = (false, false, false);
        loop {
            match self.peek().clone() {
                Tok::Vertex => {
                    self.bump();
                    prog.vertex_decls = self.decl_list()?;
                    saw_vertex = true;
                }
                Tok::GlobalVariable => {
                    self.bump();
                    prog.global_decls = self.decl_list()?;
                }
                Tok::Initialize => {
                    prog.initialize = self.udf(Tok::Initialize)?;
                    saw_init = true;
                }
                Tok::Traverse => {
                    prog.traverse = self.udf(Tok::Traverse)?;
                    saw_trav = true;
                }
                Tok::Update => {
                    prog.update = self.udf(Tok::Update)?;
                    saw_upd = true;
                }
                Tok::Eof => break,
                other => {
                    return Err(LngaError::parse(
                        self.span(),
                        format!("expected a declaration or UDF, found {other}"),
                    ))
                }
            }
        }
        if !saw_vertex {
            return Err(LngaError::parse(Span::default(), "missing Vertex declaration"));
        }
        if !(saw_init && saw_trav && saw_upd) {
            return Err(LngaError::parse(
                Span::default(),
                "a program must define Initialize, Traverse, and Update",
            ));
        }
        Ok(prog)
    }

    fn decl_list(&mut self) -> Result<Vec<AttrDecl>, LngaError> {
        self.eat(&Tok::LParen)?;
        let mut out = Vec::new();
        if self.peek() != &Tok::RParen {
            loop {
                out.push(self.decl_item()?);
                if self.peek() == &Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.eat(&Tok::RParen)?;
        Ok(out)
    }

    fn decl_item(&mut self) -> Result<AttrDecl, LngaError> {
        let (name, span) = self.eat_ident()?;
        if self.peek() == &Tok::Colon {
            self.bump();
            let ty = self.decl_type()?;
            Ok(AttrDecl { name, ty, span })
        } else {
            let pre = Predefined::parse(&name).ok_or_else(|| {
                LngaError::parse(
                    span,
                    format!("`{name}` is not a pre-defined vertex datum and has no type"),
                )
            })?;
            Ok(AttrDecl {
                name,
                ty: DeclType::Predefined(pre),
                span,
            })
        }
    }

    fn prim_type(&mut self) -> Result<PrimType, LngaError> {
        let (name, span) = self.eat_ident()?;
        match name.as_str() {
            "bool" => Ok(PrimType::Bool),
            "int" => Ok(PrimType::Int),
            "long" => Ok(PrimType::Long),
            "float" => Ok(PrimType::Float),
            "double" => Ok(PrimType::Double),
            other => Err(LngaError::parse(
                span,
                format!("unknown primitive type `{other}`"),
            )),
        }
    }

    fn decl_type(&mut self) -> Result<DeclType, LngaError> {
        match self.peek().clone() {
            Tok::Accm => {
                self.bump();
                self.eat(&Tok::Lt)?;
                let prim = self.prim_type()?;
                self.eat(&Tok::Comma)?;
                let (op_name, op_span) = self.eat_ident()?;
                let op = AccmOp::parse(&op_name).ok_or_else(|| {
                    LngaError::parse(
                        op_span,
                        format!("`{op_name}` is not an Abelian monoid operator"),
                    )
                })?;
                self.eat(&Tok::Gt)?;
                Ok(DeclType::Accm(prim, op))
            }
            Tok::Array => {
                self.bump();
                self.eat(&Tok::Lt)?;
                let prim = self.prim_type()?;
                self.eat(&Tok::Comma)?;
                let size = match self.bump() {
                    Token {
                        tok: Tok::IntLit(n),
                        ..
                    } if n > 0 => n as usize,
                    t => {
                        return Err(LngaError::parse(
                            t.span,
                            "Array size must be a positive integer literal",
                        ))
                    }
                };
                self.eat(&Tok::Gt)?;
                Ok(DeclType::Array(prim, size))
            }
            _ => Ok(DeclType::Prim(self.prim_type()?)),
        }
    }

    fn udf(&mut self, kind: Tok) -> Result<Udf, LngaError> {
        self.eat(&kind)?;
        self.eat(&Tok::LParen)?;
        let (param, _) = self.eat_ident()?;
        self.eat(&Tok::RParen)?;
        self.eat(&Tok::Colon)?;
        let body = self.block()?;
        Ok(Udf { param, body })
    }

    /// A `{ ... }` block, or a single statement.
    fn block(&mut self) -> Result<Vec<Stmt>, LngaError> {
        if self.peek() == &Tok::LBrace {
            self.bump();
            let mut out = Vec::new();
            while self.peek() != &Tok::RBrace {
                if self.peek() == &Tok::Eof {
                    return Err(LngaError::parse(self.span(), "unterminated block"));
                }
                out.push(self.stmt()?);
            }
            self.bump();
            Ok(out)
        } else {
            Ok(vec![self.stmt()?])
        }
    }

    fn stmt(&mut self) -> Result<Stmt, LngaError> {
        match self.peek().clone() {
            Tok::Let => {
                let span = self.bump().span;
                let (name, _) = self.eat_ident()?;
                self.eat(&Tok::Assign)?;
                let expr = self.expr()?;
                self.eat(&Tok::Semi)?;
                Ok(Stmt::Let { name, expr, span })
            }
            Tok::For => {
                let span = self.bump().span;
                let (var, _) = self.eat_ident()?;
                self.eat(&Tok::In)?;
                let (source_var, _) = self.eat_ident()?;
                self.eat(&Tok::Dot)?;
                let (source_attr, _) = self.eat_ident()?;
                let where_clause = if self.peek() == &Tok::Where {
                    self.bump();
                    self.eat(&Tok::LParen)?;
                    let e = self.expr()?;
                    self.eat(&Tok::RParen)?;
                    Some(e)
                } else {
                    None
                };
                let body = self.block()?;
                Ok(Stmt::For {
                    var,
                    source_var,
                    source_attr,
                    where_clause,
                    body,
                    span,
                })
            }
            Tok::If => {
                self.bump();
                self.eat(&Tok::LParen)?;
                let cond = self.expr()?;
                self.eat(&Tok::RParen)?;
                let then_body = self.block()?;
                let else_body = if self.peek() == &Tok::Else {
                    self.bump();
                    self.block()?
                } else {
                    Vec::new()
                };
                Ok(Stmt::If {
                    cond,
                    then_body,
                    else_body,
                })
            }
            Tok::Ident(_) => self.assign_or_accumulate(),
            other => Err(LngaError::parse(
                self.span(),
                format!("expected a statement, found {other}"),
            )),
        }
    }

    /// `x = e;` | `x.attr = e;` | `x.Accumulate(e);` | `x.attr.Accumulate(e);`
    fn assign_or_accumulate(&mut self) -> Result<Stmt, LngaError> {
        let (first, first_span) = self.eat_ident()?;
        if self.peek() == &Tok::Assign {
            // Bare global assignment.
            self.bump();
            let expr = self.expr()?;
            self.eat(&Tok::Semi)?;
            return Ok(Stmt::Assign {
                target: Place::Global {
                    name: first,
                    span: first_span,
                },
                expr,
            });
        }
        self.eat(&Tok::Dot)?;
        let (second, second_span) = self.eat_ident()?;
        if second == "Accumulate" {
            // global.Accumulate(e);
            self.eat(&Tok::LParen)?;
            let expr = self.expr()?;
            self.eat(&Tok::RParen)?;
            self.eat(&Tok::Semi)?;
            return Ok(Stmt::Accumulate {
                target: Place::Global {
                    name: first,
                    span: first_span,
                },
                expr,
            });
        }
        let place = Place::VertexAttr {
            var: first,
            attr: second,
            span: first_span.merge(second_span),
        };
        match self.peek().clone() {
            Tok::Assign => {
                self.bump();
                let expr = self.expr()?;
                self.eat(&Tok::Semi)?;
                Ok(Stmt::Assign {
                    target: place,
                    expr,
                })
            }
            Tok::Dot => {
                self.bump();
                let (m, mspan) = self.eat_ident()?;
                if m != "Accumulate" {
                    return Err(LngaError::parse(
                        mspan,
                        format!("expected `Accumulate`, found `{m}`"),
                    ));
                }
                self.eat(&Tok::LParen)?;
                let expr = self.expr()?;
                self.eat(&Tok::RParen)?;
                self.eat(&Tok::Semi)?;
                Ok(Stmt::Accumulate {
                    target: place,
                    expr,
                })
            }
            other => Err(LngaError::parse(
                self.span(),
                format!("expected `=` or `.Accumulate`, found {other}"),
            )),
        }
    }

    // ---- expressions ----

    fn expr(&mut self) -> Result<AstExpr, LngaError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<AstExpr, LngaError> {
        let mut lhs = self.and_expr()?;
        while self.peek() == &Tok::OrOr {
            self.bump();
            let rhs = self.and_expr()?;
            lhs = AstExpr::Binary(BinOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<AstExpr, LngaError> {
        let mut lhs = self.cmp_expr()?;
        while self.peek() == &Tok::AndAnd {
            self.bump();
            let rhs = self.cmp_expr()?;
            lhs = AstExpr::Binary(BinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<AstExpr, LngaError> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            Tok::Lt => BinOp::Lt,
            Tok::Le => BinOp::Le,
            Tok::Gt => BinOp::Gt,
            Tok::Ge => BinOp::Ge,
            Tok::EqEq => BinOp::Eq,
            Tok::Ne => BinOp::Ne,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.add_expr()?;
        Ok(AstExpr::Binary(op, Box::new(lhs), Box::new(rhs)))
    }

    fn add_expr(&mut self) -> Result<AstExpr, LngaError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = AstExpr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<AstExpr, LngaError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                Tok::Percent => BinOp::Mod,
                _ => break,
            };
            self.bump();
            let rhs = self.unary_expr()?;
            lhs = AstExpr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<AstExpr, LngaError> {
        match self.peek() {
            Tok::Minus => {
                self.bump();
                Ok(AstExpr::Unary(UnOp::Neg, Box::new(self.unary_expr()?)))
            }
            Tok::Not => {
                self.bump();
                Ok(AstExpr::Unary(UnOp::Not, Box::new(self.unary_expr()?)))
            }
            _ => self.postfix_expr(),
        }
    }

    fn postfix_expr(&mut self) -> Result<AstExpr, LngaError> {
        match self.peek().clone() {
            Tok::IntLit(v) => {
                self.bump();
                Ok(AstExpr::IntLit(v))
            }
            Tok::FloatLit(v) => {
                self.bump();
                Ok(AstExpr::FloatLit(v))
            }
            Tok::BoolLit(v) => {
                self.bump();
                Ok(AstExpr::BoolLit(v))
            }
            Tok::LParen => {
                self.bump();
                let e = self.expr()?;
                self.eat(&Tok::RParen)?;
                Ok(e)
            }
            Tok::Ident(name) => {
                let span = self.bump().span;
                // Call?
                if self.peek() == &Tok::LParen {
                    self.bump();
                    let mut args = Vec::new();
                    if self.peek() != &Tok::RParen {
                        loop {
                            args.push(self.expr()?);
                            if self.peek() == &Tok::Comma {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                    }
                    self.eat(&Tok::RParen)?;
                    return Ok(AstExpr::Call {
                        func: name,
                        args,
                        span,
                    });
                }
                // Attribute access / index?
                if self.peek() == &Tok::Dot {
                    self.bump();
                    let (attr, aspan) = self.eat_ident()?;
                    if self.peek() == &Tok::LBracket {
                        self.bump();
                        let idx = self.expr()?;
                        self.eat(&Tok::RBracket)?;
                        return Ok(AstExpr::Index {
                            var: name,
                            attr,
                            idx: Box::new(idx),
                            span: span.merge(aspan),
                        });
                    }
                    return Ok(AstExpr::Attr {
                        var: name,
                        attr,
                        span: span.merge(aspan),
                    });
                }
                Ok(AstExpr::Ident(name, span))
            }
            other => Err(LngaError::parse(
                self.span(),
                format!("expected an expression, found {other}"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PR_SRC: &str = r#"
        Vertex (id, active, out_nbrs, out_degree,
                rank: float, sum: Accm<float, SUM>)
        Initialize (u): {
            u.rank = 1;
            u.active = true;
        }
        Traverse (u): {
            Let val = u.rank / u.out_degree;
            For v in u.out_nbrs {
                v.sum.Accumulate(val);
            }
        }
        Update (u): {
            Let val = 0.15 / V + 0.85 * u.sum;
            If (Abs(val - u.rank) > 0.001) {
                u.rank = val;
                u.active = true;
            }
        }
    "#;

    #[test]
    fn parses_pagerank() {
        let p = parse(PR_SRC).unwrap();
        assert_eq!(p.vertex_decls.len(), 6);
        assert_eq!(p.vertex_decls[4].name, "rank");
        assert!(matches!(
            p.vertex_decls[5].ty,
            DeclType::Accm(PrimType::Float, AccmOp::Sum)
        ));
        assert_eq!(p.traverse.param, "u");
        assert_eq!(p.traverse.body.len(), 2);
        match &p.traverse.body[1] {
            Stmt::For { var, source_attr, body, .. } => {
                assert_eq!(var, "v");
                assert_eq!(source_attr, "out_nbrs");
                assert!(matches!(body[0], Stmt::Accumulate { .. }));
            }
            other => panic!("expected For, got {other:?}"),
        }
    }

    const TC_SRC: &str = r#"
        Vertex (id, active, nbrs)
        GlobalVariable (cnts: Accm<long, SUM>)
        Initialize (u1): { u1.active = true; }
        Traverse (u1): {
            For u2 in u1.nbrs Where (u1 < u2) {
                For u3 in u2.nbrs Where (u2 < u3) {
                    For u4 in u3.nbrs Where (u4 == u1) {
                        cnts.Accumulate(1);
                    }
                }
            }
        }
        Update (u1): { }
    "#;

    #[test]
    fn parses_triangle_counting() {
        let p = parse(TC_SRC).unwrap();
        assert_eq!(p.global_decls.len(), 1);
        // Three nested For loops.
        let Stmt::For { body, where_clause, .. } = &p.traverse.body[0] else {
            panic!()
        };
        assert!(where_clause.is_some());
        let Stmt::For { body, .. } = &body[0] else { panic!() };
        let Stmt::For { body, .. } = &body[0] else { panic!() };
        assert!(matches!(
            body[0],
            Stmt::Accumulate {
                target: Place::Global { .. },
                ..
            }
        ));
    }

    #[test]
    fn precedence_binds_correctly() {
        let p = parse(
            "Vertex (id, active, x: double)
             Initialize (u): { u.x = 1 + 2 * 3; }
             Traverse (u): { }
             Update (u): { }",
        )
        .unwrap();
        let Stmt::Assign { expr, .. } = &p.initialize.body[0] else {
            panic!()
        };
        // 1 + (2 * 3)
        let AstExpr::Binary(BinOp::Add, _, rhs) = expr else {
            panic!("expected Add at top, got {expr:?}")
        };
        assert!(matches!(**rhs, AstExpr::Binary(BinOp::Mul, _, _)));
    }

    #[test]
    fn single_statement_blocks() {
        let p = parse(
            "Vertex (id, active, x: long)
             Initialize (u): u.x = 3;
             Traverse (u): { }
             Update (u): If (u.x > 2) u.active = true; Else u.active = false;",
        )
        .unwrap();
        let Stmt::If { then_body, else_body, .. } = &p.update.body[0] else {
            panic!()
        };
        assert_eq!(then_body.len(), 1);
        assert_eq!(else_body.len(), 1);
    }

    #[test]
    fn missing_udf_is_an_error() {
        let err = parse("Vertex (id) Initialize (u): { } Traverse (u): { }").unwrap_err();
        assert!(err.to_string().contains("Update"));
    }

    #[test]
    fn unknown_predefined_is_an_error() {
        let err = parse("Vertex (id, wat) Initialize(u): {} Traverse(u): {} Update(u): {}")
            .unwrap_err();
        assert!(err.to_string().contains("wat"));
    }

    #[test]
    fn error_reports_line() {
        let err = parse("Vertex (id)\nInitialize (u): {\n  Let = 3;\n}").unwrap_err();
        assert_eq!(err.line, 3);
    }
}
