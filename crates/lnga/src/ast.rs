//! The `L_NGA` abstract syntax tree (paper §3, Figures 4–5).

use crate::token::Span;
use itg_gsa::accm::AccmOp;
use itg_gsa::expr::EdgeDir;
use itg_gsa::value::PrimType;

/// Pre-defined vertex data a program can opt into by name (paper §3):
/// `id`, `active`, degrees, and adjacency lists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Predefined {
    Id,
    Active,
    Nbrs,
    OutNbrs,
    InNbrs,
    Degree,
    OutDegree,
    InDegree,
}

impl Predefined {
    pub fn parse(name: &str) -> Option<Predefined> {
        Some(match name {
            "id" => Predefined::Id,
            "active" => Predefined::Active,
            "nbrs" => Predefined::Nbrs,
            "out_nbrs" => Predefined::OutNbrs,
            "in_nbrs" => Predefined::InNbrs,
            "degree" => Predefined::Degree,
            "out_degree" => Predefined::OutDegree,
            "in_degree" => Predefined::InDegree,
        _ => return None,
        })
    }

    /// Direction of an adjacency/degree predefined.
    pub fn dir(self) -> Option<EdgeDir> {
        match self {
            Predefined::Nbrs | Predefined::Degree => Some(EdgeDir::Both),
            Predefined::OutNbrs | Predefined::OutDegree => Some(EdgeDir::Out),
            Predefined::InNbrs | Predefined::InDegree => Some(EdgeDir::In),
            _ => None,
        }
    }

    pub fn is_nbrs(self) -> bool {
        matches!(
            self,
            Predefined::Nbrs | Predefined::OutNbrs | Predefined::InNbrs
        )
    }

    pub fn is_degree(self) -> bool {
        matches!(
            self,
            Predefined::Degree | Predefined::OutDegree | Predefined::InDegree
        )
    }
}

/// A declared type in `Vertex (...)` / `GlobalVariable (...)`.
#[derive(Debug, Clone, PartialEq)]
pub enum DeclType {
    /// One of the pre-defined vertex data items (name only, no type).
    Predefined(Predefined),
    Prim(PrimType),
    Accm(PrimType, AccmOp),
    Array(PrimType, usize),
}

/// One declaration item.
#[derive(Debug, Clone, PartialEq)]
pub struct AttrDecl {
    pub name: String,
    pub ty: DeclType,
    pub span: Span,
}

/// Expressions as written (names unresolved).
#[derive(Debug, Clone, PartialEq)]
pub enum AstExpr {
    IntLit(i64),
    FloatLit(f64),
    BoolLit(bool),
    /// A bare identifier: a Let-bound variable, a vertex variable (in id
    /// comparisons like `u1 < u2`), a global, or `V`.
    Ident(String, Span),
    /// `var.attr`
    Attr {
        var: String,
        attr: String,
        span: Span,
    },
    /// `var.attr[idx]`
    Index {
        var: String,
        attr: String,
        idx: Box<AstExpr>,
        span: Span,
    },
    Unary(itg_gsa::expr::UnOp, Box<AstExpr>),
    Binary(itg_gsa::expr::BinOp, Box<AstExpr>, Box<AstExpr>),
    /// `Abs(x)`, `Min(x, y)`, `Max(x, y)`
    Call {
        func: String,
        args: Vec<AstExpr>,
        span: Span,
    },
}

impl AstExpr {
    pub fn span(&self) -> Span {
        match self {
            AstExpr::Ident(_, s)
            | AstExpr::Attr { span: s, .. }
            | AstExpr::Index { span: s, .. }
            | AstExpr::Call { span: s, .. } => *s,
            AstExpr::Unary(_, e) => e.span(),
            AstExpr::Binary(_, l, r) => l.span().merge(r.span()),
            _ => Span::default(),
        }
    }
}

/// Assignment / accumulate target as written.
#[derive(Debug, Clone, PartialEq)]
pub enum Place {
    /// `var.attr`
    VertexAttr {
        var: String,
        attr: String,
        span: Span,
    },
    /// A bare global name.
    Global { name: String, span: Span },
}

/// Statements (Table 2).
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `Let var = expr;`
    Let {
        name: String,
        expr: AstExpr,
        span: Span,
    },
    /// `place = expr;`
    Assign { target: Place, expr: AstExpr },
    /// `place.Accumulate(expr);`
    Accumulate { target: Place, expr: AstExpr },
    /// `For var in src.nbrs Where (cond) { body }`
    For {
        var: String,
        source_var: String,
        source_attr: String,
        where_clause: Option<AstExpr>,
        body: Vec<Stmt>,
        span: Span,
    },
    /// `If (cond) { then } Else { els }`
    If {
        cond: AstExpr,
        then_body: Vec<Stmt>,
        else_body: Vec<Stmt>,
    },
}

/// A user-defined function: `Initialize`, `Traverse`, or `Update`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Udf {
    pub param: String,
    pub body: Vec<Stmt>,
}

/// A complete `L_NGA` program.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    pub vertex_decls: Vec<AttrDecl>,
    pub global_decls: Vec<AttrDecl>,
    pub initialize: Udf,
    pub traverse: Udf,
    pub update: Udf,
}
