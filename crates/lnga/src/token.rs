//! Tokens and source spans for `L_NGA`.

use std::fmt;

/// A half-open byte span into the source text, for diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    pub start: usize,
    pub end: usize,
    pub line: u32,
}

impl Span {
    pub fn new(start: usize, end: usize, line: u32) -> Span {
        Span { start, end, line }
    }

    pub fn merge(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
            line: self.line.min(other.line),
        }
    }
}

/// Token kinds of the `L_NGA` grammar.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    // Literals and names.
    Ident(String),
    IntLit(i64),
    FloatLit(f64),
    BoolLit(bool),
    // Keywords.
    Vertex,
    GlobalVariable,
    Initialize,
    Traverse,
    Update,
    Let,
    For,
    In,
    Where,
    If,
    Else,
    Accm,
    Array,
    // Punctuation and operators.
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Colon,
    Semi,
    Dot,
    Assign,  // =
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Lt,
    Le,
    Gt,
    Ge,
    EqEq,
    Ne,
    AndAnd,
    OrOr,
    Not,
    Eof,
}

impl Tok {
    /// Keyword lookup; identifiers that are not keywords stay identifiers.
    pub fn keyword(word: &str) -> Option<Tok> {
        Some(match word {
            "Vertex" => Tok::Vertex,
            "GlobalVariable" => Tok::GlobalVariable,
            "Initialize" => Tok::Initialize,
            "Traverse" => Tok::Traverse,
            "Update" => Tok::Update,
            "Let" => Tok::Let,
            "For" => Tok::For,
            "in" | "In" => Tok::In,
            "Where" => Tok::Where,
            "If" => Tok::If,
            "Else" => Tok::Else,
            "Accm" => Tok::Accm,
            "Array" => Tok::Array,
            "true" => Tok::BoolLit(true),
            "false" => Tok::BoolLit(false),
            _ => return None,
        })
    }
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier `{s}`"),
            Tok::IntLit(v) => write!(f, "integer `{v}`"),
            Tok::FloatLit(v) => write!(f, "float `{v}`"),
            Tok::BoolLit(v) => write!(f, "`{v}`"),
            Tok::Eof => write!(f, "end of input"),
            other => write!(f, "`{}`", token_text(other)),
        }
    }
}

fn token_text(t: &Tok) -> &'static str {
    match t {
        Tok::Vertex => "Vertex",
        Tok::GlobalVariable => "GlobalVariable",
        Tok::Initialize => "Initialize",
        Tok::Traverse => "Traverse",
        Tok::Update => "Update",
        Tok::Let => "Let",
        Tok::For => "For",
        Tok::In => "in",
        Tok::Where => "Where",
        Tok::If => "If",
        Tok::Else => "Else",
        Tok::Accm => "Accm",
        Tok::Array => "Array",
        Tok::LParen => "(",
        Tok::RParen => ")",
        Tok::LBrace => "{",
        Tok::RBrace => "}",
        Tok::LBracket => "[",
        Tok::RBracket => "]",
        Tok::Comma => ",",
        Tok::Colon => ":",
        Tok::Semi => ";",
        Tok::Dot => ".",
        Tok::Assign => "=",
        Tok::Plus => "+",
        Tok::Minus => "-",
        Tok::Star => "*",
        Tok::Slash => "/",
        Tok::Percent => "%",
        Tok::Lt => "<",
        Tok::Le => "<=",
        Tok::Gt => ">",
        Tok::Ge => ">=",
        Tok::EqEq => "==",
        Tok::Ne => "!=",
        Tok::AndAnd => "&&",
        Tok::OrOr => "||",
        Tok::Not => "!",
        _ => "?",
    }
}

/// A token with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub tok: Tok,
    pub span: Span,
}
