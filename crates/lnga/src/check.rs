//! The `L_NGA` type checker.
//!
//! Resolves declarations into symbol tables (non-accumulator vertex
//! attributes, vertex accumulators, global accumulators, adjacency
//! directions), checks scoping and the per-UDF statement restrictions the
//! execution semantics of Figure 4 imply:
//!
//! - **Initialize** runs once per vertex before anything else: `Let`, `If`,
//!   and `Assign` to the parameter's attributes.
//! - **Traverse** performs traversals and accumulations: `Let`, `For`,
//!   `If`, and `Accumulate` into accumulator attributes of in-scope walk
//!   vertices or into global accumulators. No direct attribute assignment —
//!   state updates happen in Update, after the global barrier.
//! - **Update** runs for vertices with touched accumulators: `Let`, `If`,
//!   `Assign` to the parameter's attributes (including `active`), and
//!   `Accumulate` into globals. It may read the parameter's accumulator
//!   values (consistent after the barrier).
//!
//! Global variables must be accumulator-typed: they are shared by all
//! vertices and only Abelian-monoid accumulation commutes enough to be
//! deterministic under parallel execution (paper §3).

use crate::ast::*;
use crate::diag::LngaError;
use crate::token::Span;
use itg_gsa::accm::AccmOp;
use itg_gsa::expr::EdgeDir;
use itg_gsa::value::{PrimType, ValueType};
use std::collections::HashMap;

/// A resolved non-accumulator vertex attribute. Index 0 is always the
/// pre-defined `active` flag.
#[derive(Debug, Clone, PartialEq)]
pub struct AttrInfo {
    pub name: String,
    pub ty: ValueType,
}

/// A resolved accumulator (vertex or global).
#[derive(Debug, Clone, PartialEq)]
pub struct AccmInfo {
    pub name: String,
    pub prim: PrimType,
    pub op: AccmOp,
}

/// Symbol tables produced by checking.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Symbols {
    /// Non-accumulator vertex attributes; `attrs[0]` is `active: bool`.
    pub attrs: Vec<AttrInfo>,
    /// Vertex accumulator attributes.
    pub accms: Vec<AccmInfo>,
    /// Global accumulators.
    pub globals: Vec<AccmInfo>,
    /// Declared adjacency sets: name → direction.
    pub nbrs: HashMap<String, EdgeDir>,
    /// Declared degrees: name → direction.
    pub degrees: HashMap<String, EdgeDir>,
    /// Whether any `in_*` predefined is used (the store then needs reverse
    /// adjacency even for one-shot queries).
    pub uses_in_direction: bool,
}

impl Symbols {
    pub fn attr_index(&self, name: &str) -> Option<usize> {
        self.attrs.iter().position(|a| a.name == name)
    }

    pub fn accm_index(&self, name: &str) -> Option<usize> {
        self.accms.iter().position(|a| a.name == name)
    }

    pub fn global_index(&self, name: &str) -> Option<usize> {
        self.globals.iter().position(|a| a.name == name)
    }
}

/// A checked program: the AST plus its symbol tables.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckedProgram {
    pub program: Program,
    pub symbols: Symbols,
}

/// Types during checking.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Ty {
    Prim(PrimType),
    Array(PrimType, usize),
    /// A vertex variable (usable in id comparisons and as a For source).
    Vertex,
}

impl Ty {
    fn is_numeric(self) -> bool {
        match self {
            Ty::Prim(p) => p.is_numeric(),
            Ty::Vertex => true, // vertex ids compare as longs
            Ty::Array(..) => false,
        }
    }

    fn is_bool(self) -> bool {
        matches!(self, Ty::Prim(PrimType::Bool))
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum UdfKind {
    Initialize,
    Traverse,
    Update,
}

/// Check a parsed program, producing its symbol tables.
pub fn check(program: Program) -> Result<CheckedProgram, LngaError> {
    let symbols = build_symbols(&program)?;
    let cx = Checker { symbols: &symbols };
    cx.check_udf(&program.initialize, UdfKind::Initialize)?;
    cx.check_udf(&program.traverse, UdfKind::Traverse)?;
    cx.check_udf(&program.update, UdfKind::Update)?;
    Ok(CheckedProgram { program, symbols })
}

fn build_symbols(program: &Program) -> Result<Symbols, LngaError> {
    let mut sym = Symbols {
        attrs: vec![AttrInfo {
            name: "active".to_string(),
            ty: ValueType::Prim(PrimType::Bool),
        }],
        ..Symbols::default()
    };
    let mut saw_active = false;
    let mut names: HashMap<&str, Span> = HashMap::new();
    for d in &program.vertex_decls {
        if let Some(prev) = names.insert(&d.name, d.span) {
            let _ = prev;
            return Err(LngaError::check(
                d.span,
                format!("duplicate vertex attribute `{}`", d.name),
            ));
        }
        match &d.ty {
            DeclType::Predefined(p) => {
                match p {
                    Predefined::Id => {}
                    Predefined::Active => saw_active = true,
                    p if p.is_nbrs() => {
                        let dir = p.dir().unwrap();
                        if dir == EdgeDir::In {
                            sym.uses_in_direction = true;
                        }
                        sym.nbrs.insert(d.name.clone(), dir);
                    }
                    p if p.is_degree() => {
                        let dir = p.dir().unwrap();
                        if dir == EdgeDir::In {
                            sym.uses_in_direction = true;
                        }
                        sym.degrees.insert(d.name.clone(), dir);
                    }
                    _ => unreachable!(),
                }
            }
            DeclType::Prim(p) => sym.attrs.push(AttrInfo {
                name: d.name.clone(),
                ty: ValueType::Prim(*p),
            }),
            DeclType::Array(p, n) => sym.attrs.push(AttrInfo {
                name: d.name.clone(),
                ty: ValueType::Array(*p, *n),
            }),
            DeclType::Accm(p, op) => sym.accms.push(AccmInfo {
                name: d.name.clone(),
                prim: *p,
                op: *op,
            }),
        }
    }
    if !saw_active {
        return Err(LngaError::check(
            Span::default(),
            "the pre-defined `active` vertex datum must be declared",
        ));
    }
    for d in &program.global_decls {
        match &d.ty {
            DeclType::Accm(p, op) => sym.globals.push(AccmInfo {
                name: d.name.clone(),
                prim: *p,
                op: *op,
            }),
            _ => {
                return Err(LngaError::check(
                    d.span,
                    format!(
                        "global variable `{}` must be an accumulator type \
                         (Accm<prim, OP>)",
                        d.name
                    ),
                ))
            }
        }
    }
    Ok(sym)
}

struct Checker<'a> {
    symbols: &'a Symbols,
}

/// Lexical scope: vertex variables (walk positions) and Let bindings.
#[derive(Debug, Clone, Default)]
struct Scope {
    vertex_vars: Vec<String>,
    lets: HashMap<String, Ty>,
}

impl Scope {
    fn vertex_pos(&self, name: &str) -> Option<usize> {
        self.vertex_vars.iter().position(|v| v == name)
    }
}

impl Checker<'_> {
    fn check_udf(&self, udf: &Udf, kind: UdfKind) -> Result<(), LngaError> {
        let mut scope = Scope::default();
        scope.vertex_vars.push(udf.param.clone());
        self.check_block(&udf.body, kind, &mut scope)
    }

    fn check_block(
        &self,
        body: &[Stmt],
        kind: UdfKind,
        scope: &mut Scope,
    ) -> Result<(), LngaError> {
        for stmt in body {
            self.check_stmt(stmt, kind, scope)?;
        }
        Ok(())
    }

    fn check_stmt(&self, stmt: &Stmt, kind: UdfKind, scope: &mut Scope) -> Result<(), LngaError> {
        match stmt {
            Stmt::Let { name, expr, span } => {
                if scope.vertex_pos(name).is_some() {
                    return Err(LngaError::check(
                        *span,
                        format!("`{name}` shadows a vertex variable"),
                    ));
                }
                let ty = self.type_of(expr, kind, scope)?;
                scope.lets.insert(name.clone(), ty);
                Ok(())
            }
            Stmt::Assign { target, expr } => {
                if kind == UdfKind::Traverse {
                    return Err(LngaError::check(
                        place_span(target),
                        "Traverse may not assign attributes; move state \
                         updates to Update (they apply after the barrier)",
                    ));
                }
                let ty = self.type_of(expr, kind, scope)?;
                match target {
                    Place::VertexAttr { var, attr, span } => {
                        if scope.vertex_pos(var) != Some(0) {
                            return Err(LngaError::check(
                                *span,
                                format!(
                                    "only the UDF parameter's attributes can \
                                     be assigned, not `{var}`"
                                ),
                            ));
                        }
                        let Some(idx) = self.symbols.attr_index(attr) else {
                            return Err(LngaError::check(
                                *span,
                                format!("`{attr}` is not an assignable vertex attribute"),
                            ));
                        };
                        let want = self.symbols.attrs[idx].ty;
                        self.require_castable(ty, want, *span)
                    }
                    Place::Global { name, span } => Err(LngaError::check(
                        *span,
                        format!(
                            "global `{name}` cannot be assigned; globals are \
                             accumulators (use .Accumulate)"
                        ),
                    )),
                }
            }
            Stmt::Accumulate { target, expr } => {
                if kind == UdfKind::Initialize {
                    return Err(LngaError::check(
                        place_span(target),
                        "Initialize may not accumulate",
                    ));
                }
                let ty = self.type_of(expr, kind, scope)?;
                match target {
                    Place::VertexAttr { var, attr, span } => {
                        if kind == UdfKind::Update {
                            return Err(LngaError::check(
                                *span,
                                "Update may not accumulate into vertex \
                                 accumulators (they reset each superstep)",
                            ));
                        }
                        if scope.vertex_pos(var).is_none() {
                            return Err(LngaError::check(
                                *span,
                                format!("unknown vertex variable `{var}`"),
                            ));
                        }
                        let Some(idx) = self.symbols.accm_index(attr) else {
                            return Err(LngaError::check(
                                *span,
                                format!("`{attr}` is not an accumulator attribute"),
                            ));
                        };
                        let want = ValueType::Prim(self.symbols.accms[idx].prim);
                        self.require_castable(ty, want, *span)
                    }
                    Place::Global { name, span } => {
                        let Some(idx) = self.symbols.global_index(name) else {
                            return Err(LngaError::check(
                                *span,
                                format!("unknown global accumulator `{name}`"),
                            ));
                        };
                        let want = ValueType::Prim(self.symbols.globals[idx].prim);
                        self.require_castable(ty, want, *span)
                    }
                }
            }
            Stmt::For {
                var,
                source_var,
                source_attr,
                where_clause,
                body,
                span,
            } => {
                if kind != UdfKind::Traverse {
                    return Err(LngaError::check(
                        *span,
                        "For loops (graph traversal) are only allowed in Traverse",
                    ));
                }
                if scope.vertex_pos(source_var).is_none() {
                    return Err(LngaError::check(
                        *span,
                        format!("unknown vertex variable `{source_var}`"),
                    ));
                }
                if !self.symbols.nbrs.contains_key(source_attr) {
                    return Err(LngaError::check(
                        *span,
                        format!(
                            "`{source_attr}` is not a declared adjacency list \
                             (nbrs / out_nbrs / in_nbrs)"
                        ),
                    ));
                }
                if scope.vertex_pos(var).is_some() || scope.lets.contains_key(var) {
                    return Err(LngaError::check(
                        *span,
                        format!("`{var}` is already bound"),
                    ));
                }
                scope.vertex_vars.push(var.clone());
                if let Some(w) = where_clause {
                    let ty = self.type_of(w, kind, scope)?;
                    if !ty.is_bool() {
                        return Err(LngaError::check(
                            w.span(),
                            "Where condition must be boolean",
                        ));
                    }
                }
                // Lets bound inside the loop do not escape it.
                let saved_lets = scope.lets.clone();
                self.check_block(body, kind, scope)?;
                scope.lets = saved_lets;
                scope.vertex_vars.pop();
                Ok(())
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let ty = self.type_of(cond, kind, scope)?;
                if !ty.is_bool() {
                    return Err(LngaError::check(
                        cond.span(),
                        "If condition must be boolean",
                    ));
                }
                let saved = scope.lets.clone();
                self.check_block(then_body, kind, scope)?;
                scope.lets = saved.clone();
                self.check_block(else_body, kind, scope)?;
                scope.lets = saved;
                Ok(())
            }
        }
    }

    fn require_castable(&self, got: Ty, want: ValueType, span: Span) -> Result<(), LngaError> {
        let ok = match (got, want) {
            (Ty::Prim(PrimType::Bool), ValueType::Prim(PrimType::Bool)) => true,
            (Ty::Prim(p), ValueType::Prim(w)) => p.is_numeric() && w.is_numeric(),
            (Ty::Array(p, n), ValueType::Array(w, m)) => p == w && n == m,
            _ => false,
        };
        if ok {
            Ok(())
        } else {
            Err(LngaError::check(
                span,
                format!("cannot store a {got:?} into a `{want}` slot"),
            ))
        }
    }

    fn type_of(&self, expr: &AstExpr, kind: UdfKind, scope: &Scope) -> Result<Ty, LngaError> {
        use itg_gsa::expr::BinOp;
        match expr {
            AstExpr::IntLit(_) => Ok(Ty::Prim(PrimType::Long)),
            AstExpr::FloatLit(_) => Ok(Ty::Prim(PrimType::Double)),
            AstExpr::BoolLit(_) => Ok(Ty::Prim(PrimType::Bool)),
            AstExpr::Ident(name, span) => {
                if let Some(ty) = scope.lets.get(name) {
                    return Ok(*ty);
                }
                if scope.vertex_pos(name).is_some() {
                    return Ok(Ty::Vertex);
                }
                if name == "V" {
                    return Ok(Ty::Prim(PrimType::Long));
                }
                if let Some(idx) = self.symbols.global_index(name) {
                    if kind != UdfKind::Update {
                        return Err(LngaError::check(
                            *span,
                            format!(
                                "global `{name}` can only be read in Update \
                                 (its value is consistent after the barrier)"
                            ),
                        ));
                    }
                    return Ok(Ty::Prim(self.symbols.globals[idx].prim));
                }
                Err(LngaError::check(*span, format!("unknown name `{name}`")))
            }
            AstExpr::Attr { var, attr, span } => {
                let Some(pos) = scope.vertex_pos(var) else {
                    return Err(LngaError::check(
                        *span,
                        format!("unknown vertex variable `{var}`"),
                    ));
                };
                if attr == "id" {
                    return Ok(Ty::Prim(PrimType::Long));
                }
                if let Some(_dir) = self.symbols.degrees.get(attr) {
                    return Ok(Ty::Prim(PrimType::Long));
                }
                if self.symbols.nbrs.contains_key(attr) {
                    return Err(LngaError::check(
                        *span,
                        format!("`{attr}` is an adjacency list; it can only be a For source"),
                    ));
                }
                if let Some(idx) = self.symbols.attr_index(attr) {
                    return match self.symbols.attrs[idx].ty {
                        ValueType::Prim(p) => Ok(Ty::Prim(p)),
                        ValueType::Array(p, n) => Ok(Ty::Array(p, n)),
                    };
                }
                if let Some(idx) = self.symbols.accm_index(attr) {
                    // Accumulator reads: only the parameter's accumulators,
                    // and only in Update (after the barrier).
                    if kind != UdfKind::Update || pos != 0 {
                        return Err(LngaError::check(
                            *span,
                            format!(
                                "accumulator `{attr}` can only be read in \
                                 Update on the UDF parameter"
                            ),
                        ));
                    }
                    return Ok(Ty::Prim(self.symbols.accms[idx].prim));
                }
                Err(LngaError::check(
                    *span,
                    format!("unknown vertex attribute `{attr}`"),
                ))
            }
            AstExpr::Index {
                var,
                attr,
                idx,
                span,
            } => {
                let base = self.type_of(
                    &AstExpr::Attr {
                        var: var.clone(),
                        attr: attr.clone(),
                        span: *span,
                    },
                    kind,
                    scope,
                )?;
                let it = self.type_of(idx, kind, scope)?;
                if !it.is_numeric() {
                    return Err(LngaError::check(idx.span(), "array index must be numeric"));
                }
                match base {
                    Ty::Array(p, _) => Ok(Ty::Prim(p)),
                    _ => Err(LngaError::check(
                        *span,
                        format!("`{attr}` is not an array attribute"),
                    )),
                }
            }
            AstExpr::Unary(op, e) => {
                let ty = self.type_of(e, kind, scope)?;
                match op {
                    itg_gsa::expr::UnOp::Not if ty.is_bool() => Ok(ty),
                    itg_gsa::expr::UnOp::Neg if ty.is_numeric() => Ok(ty),
                    _ => Err(LngaError::check(
                        e.span(),
                        format!("unary {op:?} applied to {ty:?}"),
                    )),
                }
            }
            AstExpr::Binary(op, l, r) => {
                let lt = self.type_of(l, kind, scope)?;
                let rt = self.type_of(r, kind, scope)?;
                if op.is_logical() {
                    if lt.is_bool() && rt.is_bool() {
                        return Ok(Ty::Prim(PrimType::Bool));
                    }
                    return Err(LngaError::check(l.span(), "logical op needs booleans"));
                }
                if op.is_comparison() {
                    let comparable = (lt.is_numeric() && rt.is_numeric())
                        || (lt.is_bool() && rt.is_bool() && matches!(op, BinOp::Eq | BinOp::Ne));
                    if comparable {
                        return Ok(Ty::Prim(PrimType::Bool));
                    }
                    return Err(LngaError::check(
                        l.span(),
                        format!("cannot compare {lt:?} with {rt:?}"),
                    ));
                }
                // Arithmetic.
                match (lt, rt) {
                    (Ty::Prim(a), Ty::Prim(b)) if a.is_numeric() && b.is_numeric() => a
                        .promote(b)
                        .map(Ty::Prim)
                        .ok_or_else(|| LngaError::check(l.span(), "invalid numeric promotion")),
                    (Ty::Vertex, Ty::Prim(b)) if b.is_numeric() => Ok(Ty::Prim(PrimType::Long)),
                    (Ty::Prim(a), Ty::Vertex) if a.is_numeric() => Ok(Ty::Prim(PrimType::Long)),
                    _ => Err(LngaError::check(
                        l.span(),
                        format!("arithmetic over {lt:?} and {rt:?}"),
                    )),
                }
            }
            AstExpr::Call { func, args, span } => {
                let arity = match func.as_str() {
                    "Abs" => 1,
                    "Min" | "Max" => 2,
                    other => {
                        return Err(LngaError::check(
                            *span,
                            format!("unknown function `{other}`"),
                        ))
                    }
                };
                if args.len() != arity {
                    return Err(LngaError::check(
                        *span,
                        format!("`{func}` takes {arity} argument(s), got {}", args.len()),
                    ));
                }
                let mut result = Ty::Prim(PrimType::Long);
                for a in args {
                    let t = self.type_of(a, kind, scope)?;
                    if !t.is_numeric() {
                        return Err(LngaError::check(a.span(), "numeric argument required"));
                    }
                    if let (Ty::Prim(p), Ty::Prim(q)) = (result, t) {
                        result = Ty::Prim(p.promote(q).unwrap_or(PrimType::Double));
                    }
                }
                Ok(result)
            }
        }
    }
}

fn place_span(p: &Place) -> Span {
    match p {
        Place::VertexAttr { span, .. } | Place::Global { span, .. } => *span,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn check_src(src: &str) -> Result<CheckedProgram, LngaError> {
        check(parse(src).unwrap())
    }

    const PR: &str = r#"
        Vertex (id, active, out_nbrs, out_degree,
                rank: float, sum: Accm<float, SUM>)
        Initialize (u): { u.rank = 1; u.active = true; }
        Traverse (u): {
            Let val = u.rank / u.out_degree;
            For v in u.out_nbrs { v.sum.Accumulate(val); }
        }
        Update (u): {
            Let val = 0.15 / V + 0.85 * u.sum;
            If (Abs(val - u.rank) > 0.001) { u.rank = val; u.active = true; }
        }
    "#;

    #[test]
    fn pagerank_checks_and_resolves() {
        let c = check_src(PR).unwrap();
        assert_eq!(c.symbols.attrs.len(), 2); // active, rank
        assert_eq!(c.symbols.attr_index("active"), Some(0));
        assert_eq!(c.symbols.attr_index("rank"), Some(1));
        assert_eq!(c.symbols.accms.len(), 1);
        assert_eq!(c.symbols.accms[0].op, AccmOp::Sum);
        assert_eq!(c.symbols.nbrs["out_nbrs"], EdgeDir::Out);
        assert_eq!(c.symbols.degrees["out_degree"], EdgeDir::Out);
        assert!(!c.symbols.uses_in_direction);
    }

    #[test]
    fn traverse_may_not_assign() {
        let err = check_src(
            "Vertex (id, active, nbrs, x: long)
             Initialize (u): { }
             Traverse (u): { u.x = 1; }
             Update (u): { }",
        )
        .unwrap_err();
        assert!(err.to_string().contains("Traverse may not assign"));
    }

    #[test]
    fn update_may_not_traverse() {
        let err = check_src(
            "Vertex (id, active, nbrs)
             Initialize (u): { }
             Traverse (u): { }
             Update (u): { For v in u.nbrs { } }",
        )
        .unwrap_err();
        assert!(err.to_string().contains("only allowed in Traverse"));
    }

    #[test]
    fn globals_must_be_accumulators() {
        let err = check_src(
            "Vertex (id, active, nbrs)
             GlobalVariable (x: long)
             Initialize (u): { }
             Traverse (u): { }
             Update (u): { }",
        )
        .unwrap_err();
        assert!(err.to_string().contains("must be an accumulator"));
    }

    #[test]
    fn accumulator_reads_restricted_to_update() {
        let err = check_src(
            "Vertex (id, active, nbrs, sum: Accm<double, SUM>)
             Initialize (u): { }
             Traverse (u): {
                For v in u.nbrs { v.sum.Accumulate(u.sum); }
             }
             Update (u): { }",
        )
        .unwrap_err();
        assert!(err.to_string().contains("only be read in Update"));
    }

    #[test]
    fn for_source_must_be_adjacency() {
        let err = check_src(
            "Vertex (id, active, nbrs, x: long)
             Initialize (u): { }
             Traverse (u): { For v in u.x { } }
             Update (u): { }",
        )
        .unwrap_err();
        assert!(err.to_string().contains("not a declared adjacency"));
    }

    #[test]
    fn vertex_id_comparisons_allowed() {
        let c = check_src(
            "Vertex (id, active, nbrs)
             GlobalVariable (cnts: Accm<long, SUM>)
             Initialize (u1): { u1.active = true; }
             Traverse (u1): {
                For u2 in u1.nbrs Where (u1 < u2) {
                    For u3 in u2.nbrs Where (u2 < u3) {
                        For u4 in u3.nbrs Where (u4 == u1) { cnts.Accumulate(1); }
                    }
                }
             }
             Update (u1): { }",
        )
        .unwrap();
        assert_eq!(c.symbols.globals.len(), 1);
    }

    #[test]
    fn missing_active_rejected() {
        let err = check_src(
            "Vertex (id, nbrs)
             Initialize (u): { }
             Traverse (u): { }
             Update (u): { }",
        )
        .unwrap_err();
        assert!(err.to_string().contains("active"));
    }

    #[test]
    fn unknown_names_rejected() {
        let err = check_src(
            "Vertex (id, active, nbrs)
             Initialize (u): { }
             Traverse (u): { For v in u.nbrs { v.bogus.Accumulate(1); } }
             Update (u): { }",
        )
        .unwrap_err();
        assert!(err.to_string().contains("bogus"));
    }

    #[test]
    fn bool_condition_enforced() {
        let err = check_src(
            "Vertex (id, active, nbrs, x: long)
             Initialize (u): { If (u.x + 1) { u.x = 2; } }
             Traverse (u): { }
             Update (u): { }",
        )
        .unwrap_err();
        assert!(err.to_string().contains("must be boolean"));
    }

    #[test]
    fn in_direction_detected() {
        let c = check_src(
            "Vertex (id, active, in_nbrs, out_degree)
             Initialize (u): { }
             Traverse (u): { For v in u.in_nbrs { } }
             Update (u): { }",
        )
        .unwrap();
        assert!(c.symbols.uses_in_direction);
    }

    #[test]
    fn let_scoping_in_loops() {
        // A Let bound inside a For body must not leak out.
        let err = check_src(
            "Vertex (id, active, nbrs, s: Accm<long, SUM>)
             GlobalVariable (g: Accm<long, SUM>)
             Initialize (u): { }
             Traverse (u): {
                For v in u.nbrs { Let t = 1; v.s.Accumulate(t); }
                g.Accumulate(t);
             }
             Update (u): { }",
        )
        .unwrap_err();
        assert!(err.to_string().contains("unknown name `t`"));
    }

    #[test]
    fn array_attrs_type_check() {
        let c = check_src(
            "Vertex (id, active, nbrs, emb: Array<float, 4>, s: Accm<float, SUM>)
             Initialize (u): { }
             Traverse (u): {
                For v in u.nbrs { v.s.Accumulate(u.emb[0] * 0.5); }
             }
             Update (u): { }",
        )
        .unwrap();
        assert_eq!(c.symbols.attrs[1].ty, ValueType::Array(PrimType::Float, 4));
    }
}
