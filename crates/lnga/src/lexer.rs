//! The `L_NGA` lexer.
//!
//! Whitespace-insensitive; `//` line comments and `/* */` block comments
//! are skipped. Numeric literals: integers (`i64`) and floats (presence of
//! a decimal point or exponent).

use crate::diag::LngaError;
use crate::token::{Span, Tok, Token};

/// Tokenize `src`, returning the token list terminated by `Eof`.
pub fn lex(src: &str) -> Result<Vec<Token>, LngaError> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let start = i;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(LngaError::lex(line, "unterminated block comment"));
                    }
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let word = &src[start..i];
                let tok = Tok::keyword(word).unwrap_or_else(|| Tok::Ident(word.to_string()));
                toks.push(Token {
                    tok,
                    span: Span::new(start, i, line),
                });
            }
            c if c.is_ascii_digit() => {
                let mut is_float = false;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                if i < bytes.len()
                    && bytes[i] == b'.'
                    && bytes
                        .get(i + 1)
                        .is_some_and(|b| (*b as char).is_ascii_digit())
                {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                }
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    let mut j = i + 1;
                    if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                        j += 1;
                    }
                    if j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
                        is_float = true;
                        i = j;
                        while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let text = &src[start..i];
                let tok = if is_float {
                    Tok::FloatLit(text.parse().map_err(|_| {
                        LngaError::lex(line, format!("invalid float literal `{text}`"))
                    })?)
                } else {
                    Tok::IntLit(text.parse().map_err(|_| {
                        LngaError::lex(line, format!("invalid integer literal `{text}`"))
                    })?)
                };
                toks.push(Token {
                    tok,
                    span: Span::new(start, i, line),
                });
            }
            _ => {
                let two = if i + 1 < bytes.len() {
                    &src[i..i + 2]
                } else {
                    ""
                };
                let (tok, len) = match two {
                    "==" => (Tok::EqEq, 2),
                    "!=" => (Tok::Ne, 2),
                    "<=" => (Tok::Le, 2),
                    ">=" => (Tok::Ge, 2),
                    "&&" => (Tok::AndAnd, 2),
                    "||" => (Tok::OrOr, 2),
                    _ => {
                        let t = match c {
                            '(' => Tok::LParen,
                            ')' => Tok::RParen,
                            '{' => Tok::LBrace,
                            '}' => Tok::RBrace,
                            '[' => Tok::LBracket,
                            ']' => Tok::RBracket,
                            ',' => Tok::Comma,
                            ':' => Tok::Colon,
                            ';' => Tok::Semi,
                            '.' => Tok::Dot,
                            '=' => Tok::Assign,
                            '+' => Tok::Plus,
                            '-' => Tok::Minus,
                            '*' => Tok::Star,
                            '/' => Tok::Slash,
                            '%' => Tok::Percent,
                            '<' => Tok::Lt,
                            '>' => Tok::Gt,
                            '!' => Tok::Not,
                            other => {
                                return Err(LngaError::lex(
                                    line,
                                    format!("unexpected character `{other}`"),
                                ))
                            }
                        };
                        (t, 1)
                    }
                };
                i += len;
                toks.push(Token {
                    tok,
                    span: Span::new(start, i, line),
                });
            }
        }
    }
    toks.push(Token {
        tok: Tok::Eof,
        span: Span::new(i, i, line),
    });
    Ok(toks)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            kinds("For u2 in u1"),
            vec![
                Tok::For,
                Tok::Ident("u2".into()),
                Tok::In,
                Tok::Ident("u1".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("42 0.15 1e3 7.5e-2"),
            vec![
                Tok::IntLit(42),
                Tok::FloatLit(0.15),
                Tok::FloatLit(1e3),
                Tok::FloatLit(7.5e-2),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn two_char_operators() {
        assert_eq!(
            kinds("a <= b == c && d"),
            vec![
                Tok::Ident("a".into()),
                Tok::Le,
                Tok::Ident("b".into()),
                Tok::EqEq,
                Tok::Ident("c".into()),
                Tok::AndAnd,
                Tok::Ident("d".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_skipped_and_lines_counted() {
        let toks = lex("a // comment\n/* multi\nline */ b").unwrap();
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[0].span.line, 1);
        assert_eq!(toks[1].span.line, 3);
    }

    #[test]
    fn accm_type_tokens() {
        assert_eq!(
            kinds("sum: Accm<float, SUM>"),
            vec![
                Tok::Ident("sum".into()),
                Tok::Colon,
                Tok::Accm,
                Tok::Lt,
                Tok::Ident("float".into()),
                Tok::Comma,
                Tok::Ident("SUM".into()),
                Tok::Gt,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn errors_carry_line() {
        let err = lex("a\nb\n@").unwrap_err();
        assert!(err.to_string().contains("line 3"));
        assert!(lex("/* never closed").is_err());
    }
}
