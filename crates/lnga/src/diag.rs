//! Diagnostics for the `L_NGA` front end.

use crate::token::Span;
use std::fmt;

/// The error type shared by the lexer, parser, and type checker.
#[derive(Debug, Clone, PartialEq)]
pub struct LngaError {
    pub phase: Phase,
    pub line: u32,
    pub message: String,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    Lex,
    Parse,
    Check,
}

impl LngaError {
    pub fn lex(line: u32, message: impl Into<String>) -> LngaError {
        LngaError {
            phase: Phase::Lex,
            line,
            message: message.into(),
        }
    }

    pub fn parse(span: Span, message: impl Into<String>) -> LngaError {
        LngaError {
            phase: Phase::Parse,
            line: span.line,
            message: message.into(),
        }
    }

    pub fn check(span: Span, message: impl Into<String>) -> LngaError {
        LngaError {
            phase: Phase::Check,
            line: span.line,
            message: message.into(),
        }
    }
}

impl fmt::Display for LngaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let phase = match self.phase {
            Phase::Lex => "lex",
            Phase::Parse => "parse",
            Phase::Check => "type",
        };
        write!(f, "{phase} error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LngaError {}
