//! Pretty-printer: render an `L_NGA` AST back to canonical source text.
//!
//! The printer and parser form a round trip — `parse(print(ast)) == ast`
//! modulo spans — which the test suite checks over the algorithm corpus.
//! Tooling uses this for normalized program display (e.g. the `itg` CLI
//! and error reporting), and it doubles as the canonical formatting of
//! `L_NGA` source.

use crate::ast::*;
use itg_gsa::expr::{BinOp, UnOp};
use std::fmt::Write;

/// Render a program as canonical source text.
pub fn print_program(p: &Program) -> String {
    let mut out = String::new();
    print_decls(&mut out, "Vertex", &p.vertex_decls);
    if !p.global_decls.is_empty() {
        print_decls(&mut out, "GlobalVariable", &p.global_decls);
    }
    print_udf(&mut out, "Initialize", &p.initialize);
    print_udf(&mut out, "Traverse", &p.traverse);
    print_udf(&mut out, "Update", &p.update);
    out
}

fn print_decls(out: &mut String, kw: &str, decls: &[AttrDecl]) {
    let items: Vec<String> = decls
        .iter()
        .map(|d| match &d.ty {
            DeclType::Predefined(_) => d.name.clone(),
            DeclType::Prim(p) => format!("{}: {p}", d.name),
            DeclType::Accm(p, op) => format!("{}: Accm<{p}, {op}>", d.name),
            DeclType::Array(p, n) => format!("{}: Array<{p}, {n}>", d.name),
        })
        .collect();
    let _ = writeln!(out, "{kw} ({})", items.join(", "));
}

fn print_udf(out: &mut String, kw: &str, udf: &Udf) {
    let _ = writeln!(out, "{kw} ({}): {{", udf.param);
    print_block(out, &udf.body, 1);
    let _ = writeln!(out, "}}");
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("    ");
    }
}

fn print_block(out: &mut String, body: &[Stmt], depth: usize) {
    for stmt in body {
        print_stmt(out, stmt, depth);
    }
}

fn print_stmt(out: &mut String, stmt: &Stmt, depth: usize) {
    indent(out, depth);
    match stmt {
        Stmt::Let { name, expr, .. } => {
            let _ = writeln!(out, "Let {name} = {};", print_expr(expr));
        }
        Stmt::Assign { target, expr } => {
            let _ = writeln!(out, "{} = {};", print_place(target), print_expr(expr));
        }
        Stmt::Accumulate { target, expr } => {
            let _ = writeln!(
                out,
                "{}.Accumulate({});",
                print_place(target),
                print_expr(expr)
            );
        }
        Stmt::For {
            var,
            source_var,
            source_attr,
            where_clause,
            body,
            ..
        } => {
            let mut head = format!("For {var} in {source_var}.{source_attr}");
            if let Some(w) = where_clause {
                let _ = write!(head, " Where ({})", print_expr(w));
            }
            let _ = writeln!(out, "{head} {{");
            print_block(out, body, depth + 1);
            indent(out, depth);
            out.push_str("}\n");
        }
        Stmt::If {
            cond,
            then_body,
            else_body,
        } => {
            let _ = writeln!(out, "If ({}) {{", print_expr(cond));
            print_block(out, then_body, depth + 1);
            indent(out, depth);
            if else_body.is_empty() {
                out.push_str("}\n");
            } else {
                out.push_str("} Else {\n");
                print_block(out, else_body, depth + 1);
                indent(out, depth);
                out.push_str("}\n");
            }
        }
    }
}

fn print_place(p: &Place) -> String {
    match p {
        Place::VertexAttr { var, attr, .. } => format!("{var}.{attr}"),
        Place::Global { name, .. } => name.clone(),
    }
}

fn bin_op_text(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Mod => "%",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
        BinOp::Eq => "==",
        BinOp::Ne => "!=",
        BinOp::And => "&&",
        BinOp::Or => "||",
    }
}

/// Operator precedence for minimal parenthesization (higher binds tighter).
fn precedence(op: BinOp) -> u8 {
    match op {
        BinOp::Or => 1,
        BinOp::And => 2,
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne => 3,
        BinOp::Add | BinOp::Sub => 4,
        BinOp::Mul | BinOp::Div | BinOp::Mod => 5,
    }
}

/// Render an expression with minimal parentheses.
pub fn print_expr(e: &AstExpr) -> String {
    print_prec(e, 0)
}

fn print_prec(e: &AstExpr, parent: u8) -> String {
    match e {
        AstExpr::IntLit(v) => v.to_string(),
        AstExpr::FloatLit(v) => {
            // Keep a decimal point so the literal re-lexes as a float.
            let s = v.to_string();
            if s.contains('.') || s.contains('e') || s.contains("inf") || s.contains("NaN") {
                s
            } else {
                format!("{s}.0")
            }
        }
        AstExpr::BoolLit(v) => v.to_string(),
        AstExpr::Ident(name, _) => name.clone(),
        AstExpr::Attr { var, attr, .. } => format!("{var}.{attr}"),
        AstExpr::Index { var, attr, idx, .. } => {
            format!("{var}.{attr}[{}]", print_expr(idx))
        }
        AstExpr::Unary(op, inner) => {
            let sym = match op {
                UnOp::Neg => "-",
                UnOp::Not => "!",
            };
            format!("{sym}{}", print_prec(inner, 6))
        }
        AstExpr::Binary(op, l, r) => {
            let p = precedence(*op);
            // Left-associative grammar: the right child needs parens at
            // equal precedence.
            let text = format!(
                "{} {} {}",
                print_prec(l, p),
                bin_op_text(*op),
                print_prec(r, p + 1)
            );
            if p < parent {
                format!("({text})")
            } else {
                text
            }
        }
        AstExpr::Call { func, args, .. } => {
            let args: Vec<String> = args.iter().map(print_expr).collect();
            format!("{func}({})", args.join(", "))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    /// Strip spans so ASTs compare structurally.
    fn normalize(p: &Program) -> String {
        // Printing is itself the span-free normal form: two ASTs are
        // structurally equal iff they print identically.
        print_program(p)
    }

    fn roundtrip(src: &str) {
        let ast1 = parse(src).unwrap();
        let printed = print_program(&ast1);
        let ast2 = parse(&printed)
            .unwrap_or_else(|e| panic!("printed source failed to re-parse: {e}\n{printed}"));
        assert_eq!(
            normalize(&ast1),
            normalize(&ast2),
            "round trip changed the program:\n{printed}"
        );
    }

    #[test]
    fn roundtrips_pagerank_shape() {
        roundtrip(
            "Vertex (id, active, out_nbrs, out_degree,
                     rank: long, sum: Accm<long, SUM>)
             Initialize (u): { u.rank = 1000; u.active = true; }
             Traverse (u): {
                 Let val = u.rank / u.out_degree;
                 For v in u.out_nbrs { v.sum.Accumulate(val); }
             }
             Update (u): {
                 Let val = 150 + 850 * u.sum / 1000;
                 If (Abs(val - u.rank) > 0) { u.rank = val; u.active = true; }
             }",
        );
    }

    #[test]
    fn roundtrips_nested_loops_and_wheres() {
        roundtrip(
            "Vertex (id, active, nbrs)
             GlobalVariable (cnts: Accm<long, SUM>)
             Initialize (u1): { u1.active = true; }
             Traverse (u1): {
                 For u2 in u1.nbrs Where (u1 < u2) {
                     For u3 in u2.nbrs Where (u2 < u3) {
                         For u4 in u3.nbrs Where (u4 == u1) { cnts.Accumulate(1); }
                     }
                 }
             }
             Update (u1): { }",
        );
    }

    #[test]
    fn parenthesization_preserves_meaning() {
        // (1 + 2) * 3 must keep its parens; 1 + 2 * 3 must not gain any.
        roundtrip(
            "Vertex (id, active, nbrs, x: long)
             Initialize (u): {
                 u.x = (1 + 2) * 3;
                 u.x = 1 + 2 * 3;
                 u.x = 1 - (2 - 3);
                 u.x = -(u.id + 1) % 7;
             }
             Traverse (u): { }
             Update (u): { }",
        );
        // And the values are actually different shapes:
        let p = parse(
            "Vertex (id, active, nbrs, x: long)
             Initialize (u): { u.x = (1 + 2) * 3; u.x = 1 + 2 * 3; }
             Traverse (u): { }
             Update (u): { }",
        )
        .unwrap();
        let Stmt::Assign { expr: e1, .. } = &p.initialize.body[0] else {
            panic!()
        };
        let Stmt::Assign { expr: e2, .. } = &p.initialize.body[1] else {
            panic!()
        };
        assert!(print_expr(e1).starts_with('('));
        assert_eq!(print_expr(e2), "1 + 2 * 3");
    }

    #[test]
    fn float_literals_stay_floats() {
        roundtrip(
            "Vertex (id, active, nbrs, x: double)
             Initialize (u): { u.x = 1.0; u.x = 0.15; u.x = 2.0 * u.x; }
             Traverse (u): { }
             Update (u): { }",
        );
    }

    #[test]
    fn roundtrips_every_shipped_algorithm_shape() {
        // The printer must handle everything the parser accepts across the
        // constructs used by the six evaluation algorithms.
        for src in [
            "Vertex (id, active, nbrs, comp: long, m: Accm<long, MIN>)
             Initialize (u): { u.comp = u.id; u.active = true; }
             Traverse (u): { For v in u.nbrs { v.m.Accumulate(u.comp); } }
             Update (u): { If (u.m < u.comp) { u.comp = u.m; u.active = true; } }",
            "Vertex (id, active, nbrs, dist: long, m: Accm<long, MIN>)
             Initialize (u): {
                 If (u.id == 0) { u.dist = 0; u.active = true; }
                 Else { u.dist = 1000000000; }
             }
             Traverse (u): { For v in u.nbrs { v.m.Accumulate(u.dist + 1); } }
             Update (u): { If (u.m < u.dist) { u.dist = u.m; u.active = true; } }",
            "Vertex (id, active, nbrs, degree, tri: Accm<long, SUM>, lcc: long)
             Initialize (u1): { u1.active = true; }
             Traverse (u1): {
                 For u2 in u1.nbrs {
                     For u3 in u1.nbrs Where (u2 < u3) {
                         For u4 in u2.nbrs Where (u4 == u3) { u1.tri.Accumulate(1); }
                     }
                 }
             }
             Update (u1): {
                 If (u1.degree > 1) { u1.lcc = 2000 * u1.tri / (u1.degree * (u1.degree - 1)); }
             }",
        ] {
            roundtrip(src);
        }
    }
}
