//! Property tests machine-checking Table 4: for random graphs, random
//! deltas, and each GSA operator `op`, the incremental decomposition
//! reproduces `op(s ∪ Δs) ⊖ op(s)` under multiset semantics.

use itg_gsa::expr::{BinOp, Expr};
use itg_gsa::tuple::{
    consolidate, difference, edge_tuple, streams_equal, union, Stream, Tuple,
};
use itg_gsa::value::{Value, VertexId};
use itg_gsa::window::{enumerate_walks, GraphStream, WalkSpec};
use itg_gsa::{ops, AccmOp, PrimType};
use proptest::prelude::*;

const N: u64 = 8;

/// A random simple edge set over N vertices.
fn arb_edges(max: usize) -> impl Strategy<Value = Vec<(u64, u64)>> {
    proptest::collection::btree_set((0..N, 0..N), 0..max)
        .prop_map(|s| s.into_iter().filter(|(a, b)| a != b).collect())
}

fn edges_to_stream(edges: &[(u64, u64)], mult: i64) -> Stream {
    edges.iter().map(|&(a, b)| edge_tuple(a, b, mult)).collect()
}

/// Split a base edge set into (kept, deleted) and generate inserts disjoint
/// from the kept set — a valid delta for a simple graph.
fn arb_graph_and_delta() -> impl Strategy<Value = (Vec<(u64, u64)>, Stream)> {
    (arb_edges(24), arb_edges(8), any::<u64>()).prop_map(|(base, extra, seed)| {
        let mut delta = Vec::new();
        let mut kept = Vec::new();
        for (i, e) in base.iter().enumerate() {
            // Pseudo-randomly delete ~1/4 of base edges.
            if (seed >> (i % 60)) & 3 == 0 {
                delta.push(edge_tuple(e.0, e.1, -1));
            } else {
                kept.push(*e);
            }
        }
        let mut final_edges = kept.clone();
        for e in &extra {
            if !base.contains(e) {
                delta.push(edge_tuple(e.0, e.1, 1));
                final_edges.push(*e);
            }
        }
        (base, delta)
    })
}

fn all_starts() -> Vec<(VertexId, i64)> {
    (0..N).map(|v| (v, 1)).collect()
}

fn walk_stream(walks: Vec<itg_gsa::Walk>) -> Stream {
    walks
        .into_iter()
        .map(|w| {
            Tuple::with_mult(
                w.vertices.iter().map(|&v| Value::Long(v as i64)).collect(),
                w.mult,
            )
        })
        .collect()
}

/// Evaluate ω over explicit per-hop streams.
fn run_walk(hop_streams: &[Stream], spec: &WalkSpec) -> Stream {
    let gss: Vec<GraphStream> = hop_streams
        .iter()
        .map(|es| GraphStream::edges_only(es.clone()))
        .collect();
    walk_stream(enumerate_walks(&all_starts(), &gss, spec, 3))
}

fn two_hop_spec() -> WalkSpec {
    WalkSpec::chain(vec![
            Some(Expr::bin(BinOp::Lt, Expr::WalkVertex(0), Expr::WalkVertex(1))),
            None,
        ], None)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Rule ⑦ for a 2-hop walk with both hops over the same mutating edge
    /// stream: ω(es', es') ⊖ ω(es, es) ≡ ω(Δes, es) ∪ ω(es', Δes).
    #[test]
    fn rule7_two_hop((base, delta) in arb_graph_and_delta()) {
        let es = edges_to_stream(&base, 1);
        let primed = union(&es, &delta);
        let spec = two_hop_spec();

        let q_new = run_walk(&[primed.clone(), primed.clone()], &spec);
        let q_old = run_walk(&[es.clone(), es.clone()], &spec);
        let expected = difference(&q_new, &q_old);

        let d1 = run_walk(&[delta.clone(), es.clone()], &spec);
        let d2 = run_walk(&[primed.clone(), delta.clone()], &spec);
        let got = union(&d1, &d2);

        prop_assert!(
            streams_equal(&expected, &got),
            "expected {:?}, got {:?}",
            consolidate(&expected),
            consolidate(&got)
        );
    }

    /// Rule ⑦ for the 3-hop Triangle Counting walk (with its ordering
    /// constraints): the 3-term decomposition matches re-execution.
    #[test]
    fn rule7_triangle_counting((base, delta) in arb_graph_and_delta()) {
        let es = edges_to_stream(&base, 1);
        let primed = union(&es, &delta);
        let spec = WalkSpec::chain(vec![
                Some(Expr::bin(BinOp::Lt, Expr::WalkVertex(0), Expr::WalkVertex(1))),
                Some(Expr::bin(BinOp::Lt, Expr::WalkVertex(1), Expr::WalkVertex(2))),
                Some(Expr::bin(BinOp::Eq, Expr::WalkVertex(3), Expr::WalkVertex(0))),
            ], None);

        let q_new = run_walk(&[primed.clone(), primed.clone(), primed.clone()], &spec);
        let q_old = run_walk(&[es.clone(), es.clone(), es.clone()], &spec);
        let expected = difference(&q_new, &q_old);

        let d1 = run_walk(&[delta.clone(), es.clone(), es.clone()], &spec);
        let d2 = run_walk(&[primed.clone(), delta.clone(), es.clone()], &spec);
        let d3 = run_walk(&[primed.clone(), primed.clone(), delta.clone()], &spec);
        let got = union(&union(&d1, &d2), &d3);

        prop_assert!(streams_equal(&expected, &got));
    }

    /// Rule ①: σ(s ∪ Δs) ⊖ σ(s) ≡ σ(Δs).
    #[test]
    fn rule1_filter((base, delta) in arb_graph_and_delta()) {
        let es = edges_to_stream(&base, 1);
        let pred = Expr::bin(BinOp::Lt, Expr::WalkVertex(0), Expr::WalkVertex(1));
        let lhs = difference(
            &ops::filter(&union(&es, &delta), &pred).unwrap(),
            &ops::filter(&es, &pred).unwrap(),
        );
        let rhs = ops::filter(&delta, &pred).unwrap();
        prop_assert!(streams_equal(&lhs, &rhs));
    }

    /// Rule ②: Π(s ∪ Δs) ⊖ Π(s) ≡ Π(Δs).
    #[test]
    fn rule2_map((base, delta) in arb_graph_and_delta()) {
        let es = edges_to_stream(&base, 1);
        let exprs = [Expr::WalkVertex(1)];
        let lhs = difference(
            &ops::map(&union(&es, &delta), &exprs).unwrap(),
            &ops::map(&es, &exprs).unwrap(),
        );
        let rhs = ops::map(&delta, &exprs).unwrap();
        prop_assert!(streams_equal(&lhs, &rhs));
    }

    /// Rule ⑥ for a group accumulator: folding the delta into the previous
    /// Sum aggregation equals re-aggregating from scratch.
    #[test]
    fn rule6_accumulate_sum((base, delta) in arb_graph_and_delta()) {
        // Aggregate out-degree contribution 1 per edge keyed by src.
        let weight = |s: &Stream| -> Stream {
            s.iter()
                .map(|t| Tuple::with_mult(vec![t.cols[0].clone(), Value::Long(1)], t.mult))
                .collect()
        };
        let es = edges_to_stream(&base, 1);
        let from_scratch =
            ops::accumulate(&weight(&union(&es, &delta)), AccmOp::Sum, PrimType::Long).unwrap();

        let prev = ops::accumulate(&weight(&es), AccmOp::Sum, PrimType::Long).unwrap();
        let delta_agg = ops::accumulate(&weight(&delta), AccmOp::Sum, PrimType::Long).unwrap();
        let mut merged: std::collections::BTreeMap<VertexId, i64> = prev
            .into_iter()
            .map(|(k, v)| (k, v.as_i64().unwrap()))
            .collect();
        for (k, v) in delta_agg {
            *merged.entry(k).or_insert(0) += v.as_i64().unwrap();
        }
        let merged: Vec<(VertexId, Value)> = merged
            .into_iter()
            .filter(|(_, v)| *v != 0)
            .map(|(k, v)| (k, Value::Long(v)))
            .collect();
        let from_scratch: Vec<(VertexId, Value)> = from_scratch
            .into_iter()
            .filter(|(_, v)| v.as_i64() != Some(0))
            .collect();
        prop_assert_eq!(merged, from_scratch);
    }

    /// Rules ③/④: union and difference distribute over deltas.
    #[test]
    fn rules34_union_difference(
        (b1, d1) in arb_graph_and_delta(),
        (b2, d2) in arb_graph_and_delta(),
    ) {
        let s1 = edges_to_stream(&b1, 1);
        let s2 = edges_to_stream(&b2, 1);
        // Union.
        let lhs = difference(
            &union(&union(&s1, &d1), &union(&s2, &d2)),
            &union(&s1, &s2),
        );
        let rhs = union(&d1, &d2);
        prop_assert!(streams_equal(&lhs, &rhs));
        // Difference.
        let lhs = difference(
            &difference(&union(&s1, &d1), &union(&s2, &d2)),
            &difference(&s1, &s2),
        );
        let rhs = difference(&d1, &d2);
        prop_assert!(streams_equal(&lhs, &rhs));
    }
}

/// Rule ⑦ for a *branching* walk (the LCC shape): hops 0 and 1 both source
/// from position 0, hop 2 sources from position 1. The 3-term decomposition
/// must match re-execution just as for chains.
fn branching_spec() -> WalkSpec {
    WalkSpec {
        hop_constraints: vec![
            None,
            Some(Expr::bin(BinOp::Lt, Expr::WalkVertex(1), Expr::WalkVertex(2))),
            Some(Expr::bin(BinOp::Eq, Expr::WalkVertex(3), Expr::WalkVertex(2))),
        ],
        hop_sources: vec![0, 0, 1],
        final_constraint: None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn rule7_branching_walk((base, delta) in arb_graph_and_delta()) {
        let es = edges_to_stream(&base, 1);
        let primed = union(&es, &delta);
        let spec = branching_spec();

        let q_new = run_walk(&[primed.clone(), primed.clone(), primed.clone()], &spec);
        let q_old = run_walk(&[es.clone(), es.clone(), es.clone()], &spec);
        let expected = difference(&q_new, &q_old);

        let d1 = run_walk(&[delta.clone(), es.clone(), es.clone()], &spec);
        let d2 = run_walk(&[primed.clone(), delta.clone(), es.clone()], &spec);
        let d3 = run_walk(&[primed.clone(), primed.clone(), delta.clone()], &spec);
        let got = union(&union(&d1, &d2), &d3);

        prop_assert!(
            streams_equal(&expected, &got),
            "branching decomposition diverged: expected {:?}, got {:?}",
            consolidate(&expected),
            consolidate(&got)
        );
    }

    /// Rule ⑤ (Assign): the delta of an assignment stream is the assignment
    /// of the delta stream — delete-old/insert-new pairs distribute.
    #[test]
    fn rule5_assign((base, delta) in arb_graph_and_delta()) {
        // Model attribute updates as (id, old, new) triples derived from
        // edges: id = src, old = dst, new = dst + 1.
        let triple = |s: &Stream| -> Stream {
            s.iter()
                .map(|t| {
                    Tuple::with_mult(
                        vec![
                            t.cols[0].clone(),
                            t.cols[1].clone(),
                            Value::Long(t.cols[1].as_i64().unwrap() + 1),
                        ],
                        t.mult,
                    )
                })
                .collect()
        };
        let s = triple(&edges_to_stream(&base, 1));
        let d = triple(&delta);
        let lhs = difference(
            &ops::assign(&union(&s, &d)),
            &ops::assign(&s),
        );
        let rhs = ops::assign(&d);
        prop_assert!(streams_equal(&lhs, &rhs));
    }
}
