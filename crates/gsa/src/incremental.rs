//! Automatic query incrementalization: the rules of Table 4.
//!
//! Given a one-shot plan `P_Q`, `incrementalize` derives `P_ΔQ` such that
//! `Q(s ∪ Δs) = Q(s) ∪ ΔQ(s, Δs)` under the ±multiplicity multiset model.
//! The scalar operators distribute over deltas (rules ①–⑥); the Walk
//! operator expands into a union of per-delta-stream sub-queries with
//! prefix-primed / suffix-base bindings (rule ⑦):
//!
//! Δ(ω(s1, …, sn)) = ω(Δs1, s2, …, sn) ∪ ω(s'1, Δs2, s3, …, sn) ∪ …
//!                   ∪ ω(s'1, …, s'_{n−1}, Δsn)   where s'i = si ∪ Δsi.
//!
//! GSA is closed under these rules, so the same engine executes both plans.

use crate::plan::{AlgebraNode, StreamRef, StreamVersion};

/// Derive the incremental plan `P_ΔQ` from the one-shot plan `P_Q`.
pub fn incrementalize(plan: &AlgebraNode) -> AlgebraNode {
    match plan {
        // Rule ①: Δ(σ(s)) = σ(Δs)
        AlgebraNode::Filter { pred, input } => AlgebraNode::Filter {
            pred: pred.clone(),
            input: Box::new(incrementalize(input)),
        },
        // Rule ②: Δ(Π(s)) = Π(Δs)
        AlgebraNode::Map { exprs, input } => AlgebraNode::Map {
            exprs: exprs.clone(),
            input: Box::new(incrementalize(input)),
        },
        // Rule ③: Δ(s1 ∪ s2) = Δs1 ∪ Δs2
        AlgebraNode::Union(inputs) => {
            AlgebraNode::Union(inputs.iter().map(incrementalize).collect())
        }
        // Rule ④: Δ(s1 ⊖ s2) = Δs1 ⊖ Δs2
        AlgebraNode::Difference(a, b) => AlgebraNode::Difference(
            Box::new(incrementalize(a)),
            Box::new(incrementalize(b)),
        ),
        // Rule ⑤: Δ(←(s)) = ←(Δs)
        AlgebraNode::Assign { target, value, input } => AlgebraNode::Assign {
            target: target.clone(),
            value: value.clone(),
            input: Box::new(incrementalize(input)),
        },
        // Rule ⑥: Δ(⊎(s)) = ⊎(Δs)
        AlgebraNode::Accumulate {
            target,
            op,
            ty,
            value,
            input,
        } => AlgebraNode::Accumulate {
            target: target.clone(),
            op: *op,
            ty: *ty,
            value: value.clone(),
            input: Box::new(incrementalize(input)),
        },
        // Rule ⑦: the Walk expansion.
        AlgebraNode::Walk {
            streams,
            start_filter,
            hop_constraints,
            final_constraint,
            delta_start_images,
        } => {
            assert!(
                !delta_start_images,
                "cannot incrementalize an already-incremental walk"
            );
            let n = streams.len();
            let mut subqueries = Vec::with_capacity(n);
            for d in 0..n {
                let bound: Vec<StreamRef> = streams
                    .iter()
                    .enumerate()
                    .map(|(i, r)| {
                        debug_assert_eq!(
                            r.version,
                            StreamVersion::Base,
                            "one-shot walks bind base streams"
                        );
                        let version = match i.cmp(&d) {
                            std::cmp::Ordering::Less => StreamVersion::Primed,
                            std::cmp::Ordering::Equal => StreamVersion::Delta,
                            std::cmp::Ordering::Greater => StreamVersion::Base,
                        };
                        StreamRef {
                            index: r.index,
                            version,
                        }
                    })
                    .collect();
                subqueries.push(AlgebraNode::Walk {
                    streams: bound,
                    start_filter: start_filter.clone(),
                    hop_constraints: hop_constraints.clone(),
                    final_constraint: final_constraint.clone(),
                    // The Δvs sub-query (d == 0) enumerates each changed
                    // start vertex under both its old (−1) and new (+1)
                    // attribute images.
                    delta_start_images: d == 0,
                });
            }
            AlgebraNode::Union(subqueries)
        }
    }
}

/// The sub-queries of an incremental plan, flattened: every Walk in `P_ΔQ`
/// together with the index of its delta stream. Used by the engine's
/// seek/window-sharing batch executor.
pub fn delta_subqueries(plan: &AlgebraNode) -> Vec<(&AlgebraNode, usize)> {
    let mut out = Vec::new();
    plan.visit(&mut |n| {
        if let AlgebraNode::Walk { streams, .. } = n {
            if let Some(d) = streams
                .iter()
                .position(|r| r.version == StreamVersion::Delta)
            {
                out.push((n, d));
            }
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::StreamRef;

    fn walk(k: usize) -> AlgebraNode {
        AlgebraNode::Walk {
            streams: (0..=k).map(StreamRef::base).collect(),
            start_filter: None,
            hop_constraints: vec![None; k],
            final_constraint: None,
            delta_start_images: false,
        }
    }

    #[test]
    fn rule7_produces_k_plus_one_subqueries() {
        let p = walk(3); // TC: vs, es1, es2, es3
        let dp = incrementalize(&p);
        let subs = delta_subqueries(&dp);
        assert_eq!(subs.len(), 4);
        // Sub-query d: streams < d primed, stream d delta, streams > d base.
        for (sq, d) in &subs {
            if let AlgebraNode::Walk {
                streams,
                delta_start_images,
                ..
            } = sq
            {
                for (i, r) in streams.iter().enumerate() {
                    let expect = match i.cmp(d) {
                        std::cmp::Ordering::Less => StreamVersion::Primed,
                        std::cmp::Ordering::Equal => StreamVersion::Delta,
                        std::cmp::Ordering::Greater => StreamVersion::Base,
                    };
                    assert_eq!(r.version, expect, "sub-query {d}, stream {i}");
                }
                assert_eq!(*delta_start_images, *d == 0);
            } else {
                unreachable!()
            }
        }
    }

    #[test]
    fn scalar_rules_distribute() {
        use crate::accm::AccmOp;
        use crate::expr::Expr;
        use crate::plan::WriteTarget;
        use crate::value::PrimType;

        // ⊎(Π(ω(vs, es))) — the PR shape.
        let p = AlgebraNode::Accumulate {
            target: WriteTarget::VertexAttr {
                key: Expr::WalkVertex(1),
                attr: 0,
            },
            op: AccmOp::Sum,
            ty: PrimType::Double,
            value: Expr::lit_double(1.0),
            input: Box::new(AlgebraNode::Map {
                exprs: vec![Expr::WalkVertex(1)],
                input: Box::new(walk(1)),
            }),
        };
        let dp = incrementalize(&p);
        // Outer operators unchanged; the Walk became a Union of 2.
        match &dp {
            AlgebraNode::Accumulate { input, .. } => match input.as_ref() {
                AlgebraNode::Map { input, .. } => match input.as_ref() {
                    AlgebraNode::Union(subs) => assert_eq!(subs.len(), 2),
                    other => panic!("expected union, got {other:?}"),
                },
                other => panic!("expected map, got {other:?}"),
            },
            other => panic!("expected accumulate, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "already-incremental")]
    fn double_incrementalization_rejected() {
        let p = walk(1);
        let dp = incrementalize(&p);
        incrementalize(&dp);
    }
}
