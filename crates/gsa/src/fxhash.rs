//! A small, fast, non-cryptographic hasher (FxHash-style multiply-rotate),
//! used for the hash-heavy paths: visited sets in MS-BFS, arrangement
//! indexes in the baselines, and accumulator maps.
//!
//! Implemented locally to keep the dependency set to the approved list.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const SEED64: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-rotate hasher in the style of the Firefox/rustc hasher.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED64);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        // A final avalanche keeps low bits usable for power-of-two tables.
        let mut h = self.hash;
        h ^= h >> 32;
        h = h.wrapping_mul(0xd6e8_feb8_6659_fd93);
        h ^= h >> 32;
        h
    }
}

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<K> = HashSet<K, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_keys_distinct_hashes() {
        let mut seen = HashSet::new();
        for i in 0u64..10_000 {
            let mut h = FxHasher::default();
            h.write_u64(i);
            assert!(seen.insert(h.finish()), "collision at {i}");
        }
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m[&437], 874);
    }

    #[test]
    fn byte_writes_consistent_with_word_writes() {
        let mut a = FxHasher::default();
        a.write(&7u64.to_le_bytes());
        let mut b = FxHasher::default();
        b.write_u64(7);
        assert_eq!(a.finish(), b.finish());
    }
}
