//! The scalar stream operators of Table 3: Filter (σ), Map (Π), Union (∪),
//! Difference (⊖), Assign (←), and Accumulate (⊎).
//!
//! These are the *reference* implementations over materialized streams; they
//! define the semantics the engine's specialized paths must match and are
//! the subjects of the Table 4 property tests in `incremental.rs`.

use crate::accm::AccmOp;
use crate::expr::{eval, EvalError, Expr, IdRowContext};
use crate::fxhash::FxHashMap;
use crate::obs;
use crate::tuple::{Stream, Tuple};
use crate::value::{PrimType, Value, VertexId};

fn id_row(t: &Tuple) -> Vec<VertexId> {
    t.cols
        .iter()
        .map(|v| v.as_vertex_id().unwrap_or(u64::MAX))
        .collect()
}

/// σ — keep tuples whose predicate over the row evaluates to true.
/// The predicate references row columns via `Expr::WalkVertex(i)`.
pub fn filter(input: &Stream, pred: &Expr) -> Result<Stream, EvalError> {
    let o = &obs::ops().filter;
    let _g = o.span.start();
    let mut out = Vec::new();
    for t in input {
        let ids = id_row(t);
        let ctx = IdRowContext { ids: &ids };
        if eval(pred, &ctx)?.as_bool().unwrap_or(false) {
            out.push(t.clone());
        }
    }
    o.record_cardinality(input.len(), out.len());
    Ok(out)
}

/// Π — project each tuple through the column expressions, preserving
/// multiplicity.
pub fn map(input: &Stream, exprs: &[Expr]) -> Result<Stream, EvalError> {
    let o = &obs::ops().map;
    let _g = o.span.start();
    let mut out = Vec::with_capacity(input.len());
    for t in input {
        let ids = id_row(t);
        let ctx = IdRowContext { ids: &ids };
        let cols = exprs
            .iter()
            .map(|e| eval(e, &ctx))
            .collect::<Result<Vec<Value>, _>>()?;
        out.push(Tuple::with_mult(cols, t.mult));
    }
    o.record_cardinality(input.len(), out.len());
    Ok(out)
}

/// ⊎ — group by the first column (the target vertex id) and fold the second
/// column with the accumulate function. Retractions (m = −1) of group
/// operators are folded via the inverse; for monoids the caller must route
/// retractions through the engine's recompute path, so this reference
/// operator requires insert-only input for monoids.
pub fn accumulate(
    input: &Stream,
    op: AccmOp,
    ty: PrimType,
) -> Result<Vec<(VertexId, Value)>, EvalError> {
    let o = &obs::ops().accumulate;
    let _g = o.span.start();
    let mut acc: FxHashMap<VertexId, Value> = FxHashMap::default();
    for t in input {
        let key = t.cols[0]
            .as_vertex_id()
            .ok_or(EvalError::TypeMismatch("accumulate key must be a vertex id"))?;
        let mut val = t.cols[1].clone();
        if t.mult < 0 {
            val = op
                .inverse(&val, ty)
                .ok_or(EvalError::TypeMismatch("retraction of a monoid accumulator"))?;
        }
        let entry = acc.entry(key).or_insert_with(|| op.identity(ty));
        *entry = op.combine(entry, &val, ty);
    }
    let mut out: Vec<(VertexId, Value)> = acc.into_iter().collect();
    out.sort_by_key(|(k, _)| *k);
    o.record_cardinality(input.len(), out.len());
    Ok(out)
}

/// Global-variable variant of ⊎: fold the first column of every tuple into a
/// single value.
pub fn accumulate_global(input: &Stream, op: AccmOp, ty: PrimType) -> Result<Value, EvalError> {
    let o = &obs::ops().accumulate_global;
    let _g = o.span.start();
    let mut acc = op.identity(ty);
    for t in input {
        let mut val = t.cols[0].clone();
        if t.mult < 0 {
            val = op
                .inverse(&val, ty)
                .ok_or(EvalError::TypeMismatch("retraction of a monoid accumulator"))?;
        }
        acc = op.combine(&acc, &val, ty);
    }
    o.record_cardinality(input.len(), 1);
    Ok(acc)
}

/// ← — the Assign operator's output: for each input tuple carrying
/// (id, old, new), emit a deletion of the old image and an insertion of the
/// new image (paper §4.3).
pub fn assign(input: &Stream) -> Stream {
    let o = &obs::ops().assign;
    let _g = o.span.start();
    let mut out = Vec::with_capacity(input.len() * 2);
    for t in input {
        let id = t.cols[0].clone();
        let old = t.cols[1].clone();
        let new = t.cols[2].clone();
        out.push(Tuple::with_mult(vec![id.clone(), old], -t.mult));
        out.push(Tuple::with_mult(vec![id, new], t.mult));
    }
    o.record_cardinality(input.len(), out.len());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::BinOp;
    use crate::tuple::{consolidate, edge_tuple};

    #[test]
    fn filter_order_constraint() {
        let s = vec![edge_tuple(1, 2, 1), edge_tuple(3, 2, 1), edge_tuple(2, 2, -1)];
        let pred = Expr::bin(BinOp::Lt, Expr::WalkVertex(0), Expr::WalkVertex(1));
        let out = filter(&s, &pred).unwrap();
        assert_eq!(out, vec![edge_tuple(1, 2, 1)]);
    }

    #[test]
    fn map_projects_and_keeps_multiplicity() {
        let s = vec![edge_tuple(4, 9, -1)];
        let out = map(&s, &[Expr::WalkVertex(1)]).unwrap();
        assert_eq!(out[0].cols, vec![Value::Long(9)]);
        assert_eq!(out[0].mult, -1);
    }

    #[test]
    fn accumulate_sum_with_retractions() {
        let s = vec![
            Tuple::new(vec![Value::Long(1), Value::Double(2.0)]),
            Tuple::new(vec![Value::Long(1), Value::Double(3.0)]),
            Tuple::with_mult(vec![Value::Long(1), Value::Double(2.0)], -1),
            Tuple::new(vec![Value::Long(2), Value::Double(7.0)]),
        ];
        let out = accumulate(&s, AccmOp::Sum, PrimType::Double).unwrap();
        assert_eq!(out, vec![(1, Value::Double(3.0)), (2, Value::Double(7.0))]);
    }

    #[test]
    fn accumulate_monoid_rejects_retraction() {
        let s = vec![Tuple::with_mult(vec![Value::Long(1), Value::Long(5)], -1)];
        assert!(accumulate(&s, AccmOp::Min, PrimType::Long).is_err());
    }

    #[test]
    fn global_accumulate() {
        let s = vec![
            Tuple::new(vec![Value::Long(1)]),
            Tuple::new(vec![Value::Long(1)]),
            Tuple::with_mult(vec![Value::Long(1)], -1),
        ];
        let out = accumulate_global(&s, AccmOp::Sum, PrimType::Long).unwrap();
        assert_eq!(out, Value::Long(1));
    }

    #[test]
    fn assign_emits_delete_insert_pairs() {
        let s = vec![Tuple::new(vec![
            Value::Long(3),
            Value::Double(1.0),
            Value::Double(2.0),
        ])];
        let out = assign(&s);
        let c = consolidate(&out);
        assert_eq!(
            c,
            vec![
                (vec![Value::Long(3), Value::Double(1.0)], -1),
                (vec![Value::Long(3), Value::Double(2.0)], 1),
            ]
        );
    }
}
