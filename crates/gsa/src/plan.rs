//! The GSA algebra plan IR.
//!
//! A compiled `L_NGA` UDF is a tree of algebra nodes over *stream
//! references*. Stream references name the logical inputs of the plan —
//! the vertex stream `vs` (always stream index 0) and the per-hop edge
//! streams `es_1..es_k` — each of which can later be bound to the base
//! stream, the delta stream, or the primed (base ∪ delta) stream by the
//! incrementalizer (paper §5.1).

use crate::accm::AccmOp;
use crate::expr::Expr;
use crate::value::PrimType;
use std::fmt;

/// Which version of a logical stream a plan node consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StreamVersion {
    /// The stream as of the previous snapshot, `s`.
    Base,
    /// The delta stream, `Δs`.
    Delta,
    /// The updated stream, `s' = s ∪ Δs`.
    Primed,
}

impl fmt::Display for StreamVersion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamVersion::Base => write!(f, "s"),
            StreamVersion::Delta => write!(f, "Δs"),
            StreamVersion::Primed => write!(f, "s'"),
        }
    }
}

/// A reference to one logical input stream of a Walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StreamRef {
    /// 0 is the vertex stream; i ≥ 1 is the edge stream of hop i.
    pub index: usize,
    pub version: StreamVersion,
}

impl StreamRef {
    pub fn base(index: usize) -> StreamRef {
        StreamRef {
            index,
            version: StreamVersion::Base,
        }
    }

    pub fn delta(index: usize) -> StreamRef {
        StreamRef {
            index,
            version: StreamVersion::Delta,
        }
    }

    pub fn primed(index: usize) -> StreamRef {
        StreamRef {
            index,
            version: StreamVersion::Primed,
        }
    }
}

impl fmt::Display for StreamRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = if self.index == 0 {
            "vs".to_string()
        } else {
            format!("es{}", self.index)
        };
        match self.version {
            StreamVersion::Base => write!(f, "{name}"),
            StreamVersion::Delta => write!(f, "Δ{name}"),
            StreamVersion::Primed => write!(f, "{name}'"),
        }
    }
}

/// Where an Accumulate/Assign writes.
#[derive(Debug, Clone, PartialEq)]
pub enum WriteTarget {
    /// A vertex attribute; the target vertex id is the value of `key`
    /// (an expression over the walk, e.g. `u2`).
    VertexAttr { key: Expr, attr: usize },
    /// A global variable.
    Global(usize),
}

/// A node of the algebra plan.
#[derive(Debug, Clone, PartialEq)]
pub enum AlgebraNode {
    /// ω — the n-ary walk generator (paper §4.3). `start_filter` selects the
    /// starting vertices from the vertex stream (stream 0); hop i draws from
    /// stream i (an edge stream).
    Walk {
        streams: Vec<StreamRef>,
        start_filter: Option<Expr>,
        hop_constraints: Vec<Option<Expr>>,
        final_constraint: Option<Expr>,
        /// For Δvs sub-queries: enumerate changed start vertices with both
        /// images (old with m=−1, new with m=+1).
        delta_start_images: bool,
    },
    /// σ
    Filter { pred: Expr, input: Box<AlgebraNode> },
    /// Π
    Map {
        exprs: Vec<Expr>,
        input: Box<AlgebraNode>,
    },
    /// ∪
    Union(Vec<AlgebraNode>),
    /// ⊖
    Difference(Box<AlgebraNode>, Box<AlgebraNode>),
    /// ⊎
    Accumulate {
        target: WriteTarget,
        op: AccmOp,
        ty: PrimType,
        value: Expr,
        input: Box<AlgebraNode>,
    },
    /// ←
    Assign {
        target: WriteTarget,
        value: Expr,
        input: Box<AlgebraNode>,
    },
}

impl AlgebraNode {
    /// Collect all Walk nodes in the plan (post-order).
    pub fn walks(&self) -> Vec<&AlgebraNode> {
        let mut out = Vec::new();
        self.visit(&mut |n| {
            if matches!(n, AlgebraNode::Walk { .. }) {
                out.push(n);
            }
        });
        out
    }

    /// Post-order visit. The borrow is immutable; transforms rebuild.
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a AlgebraNode)) {
        match self {
            AlgebraNode::Filter { input, .. }
            | AlgebraNode::Map { input, .. }
            | AlgebraNode::Accumulate { input, .. }
            | AlgebraNode::Assign { input, .. } => input.visit(f),
            AlgebraNode::Union(inputs) => {
                for i in inputs {
                    i.visit(f);
                }
            }
            AlgebraNode::Difference(a, b) => {
                a.visit(f);
                b.visit(f);
            }
            AlgebraNode::Walk { .. } => {}
        }
        f(self);
    }

    /// Pretty-print the plan as an indented operator tree.
    pub fn explain(&self) -> String {
        let mut s = String::new();
        self.explain_into(&mut s, 0);
        s
    }

    fn explain_into(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        match self {
            AlgebraNode::Walk { streams, .. } => {
                let names: Vec<String> = streams.iter().map(|r| r.to_string()).collect();
                out.push_str(&format!("{pad}ω({})\n", names.join(", ")));
            }
            AlgebraNode::Filter { pred, input } => {
                out.push_str(&format!("{pad}σ[{pred:?}]\n"));
                input.explain_into(out, depth + 1);
            }
            AlgebraNode::Map { exprs, input } => {
                out.push_str(&format!("{pad}Π[{} cols]\n", exprs.len()));
                input.explain_into(out, depth + 1);
            }
            AlgebraNode::Union(inputs) => {
                out.push_str(&format!("{pad}∪\n"));
                for i in inputs {
                    i.explain_into(out, depth + 1);
                }
            }
            AlgebraNode::Difference(a, b) => {
                out.push_str(&format!("{pad}⊖\n"));
                a.explain_into(out, depth + 1);
                b.explain_into(out, depth + 1);
            }
            AlgebraNode::Accumulate { op, target, .. } => {
                out.push_str(&format!("{pad}⊎[{op} -> {target:?}]\n"));
                if let AlgebraNode::Accumulate { input, .. } = self {
                    input.explain_into(out, depth + 1);
                }
            }
            AlgebraNode::Assign { target, input, .. } => {
                out.push_str(&format!("{pad}←[{target:?}]\n"));
                input.explain_into(out, depth + 1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tc_walk() -> AlgebraNode {
        AlgebraNode::Walk {
            streams: vec![
                StreamRef::base(0),
                StreamRef::base(1),
                StreamRef::base(2),
                StreamRef::base(3),
            ],
            start_filter: None,
            hop_constraints: vec![None, None, None],
            final_constraint: None,
            delta_start_images: false,
        }
    }

    #[test]
    fn stream_ref_display() {
        assert_eq!(StreamRef::base(0).to_string(), "vs");
        assert_eq!(StreamRef::delta(2).to_string(), "Δes2");
        assert_eq!(StreamRef::primed(1).to_string(), "es1'");
    }

    #[test]
    fn walks_collects_nested() {
        let plan = AlgebraNode::Union(vec![
            tc_walk(),
            AlgebraNode::Map {
                exprs: vec![],
                input: Box::new(tc_walk()),
            },
        ]);
        assert_eq!(plan.walks().len(), 2);
    }

    #[test]
    fn explain_renders_tree() {
        let plan = AlgebraNode::Map {
            exprs: vec![Expr::WalkVertex(1)],
            input: Box::new(tc_walk()),
        };
        let text = plan.explain();
        assert!(text.contains("Π"));
        assert!(text.contains("ω(vs, es1, es2, es3)"));
    }
}
