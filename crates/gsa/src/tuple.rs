//! Tuples with signed multiplicity and materialized streams.
//!
//! A GSA stream is a sequence of tuples, each carrying a multiplicity
//! m ∈ {−1, +1} (paper §4.1): insertions and deletions — of edges, of
//! attribute values, of walks — share one data model. A Δ-walk produced by
//! joining several tuples carries the *product* of their multiplicities
//! (paper §5.3), so multiplicities are kept as `i64` internally even though
//! source tuples are always ±1.

use crate::fxhash::FxHashMap;
use crate::value::Value;

/// A stream tuple: a row of column values plus a signed multiplicity.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Tuple {
    pub cols: Vec<Value>,
    pub mult: i64,
}

impl Tuple {
    /// A tuple with multiplicity +1.
    pub fn new(cols: Vec<Value>) -> Tuple {
        Tuple { cols, mult: 1 }
    }

    /// A tuple with explicit multiplicity.
    pub fn with_mult(cols: Vec<Value>, mult: i64) -> Tuple {
        Tuple { cols, mult }
    }

    /// The same row with negated multiplicity (a retraction).
    pub fn negated(&self) -> Tuple {
        Tuple {
            cols: self.cols.clone(),
            mult: -self.mult,
        }
    }
}

/// A materialized stream. The formal algebra layer (used by the reference
/// implementations and property tests) operates on materialized streams;
/// the engine streams tuples through specialized operators instead.
pub type Stream = Vec<Tuple>;

/// Build a stream of +1 tuples from rows.
pub fn stream_of(rows: Vec<Vec<Value>>) -> Stream {
    rows.into_iter().map(Tuple::new).collect()
}

/// An edge tuple `(src, dst)` with multiplicity `mult`.
pub fn edge_tuple(src: u64, dst: u64, mult: i64) -> Tuple {
    Tuple::with_mult(vec![Value::Long(src as i64), Value::Long(dst as i64)], mult)
}

/// Consolidate a stream into canonical multiset form: sum multiplicities of
/// identical rows and drop rows whose net multiplicity is zero. Two streams
/// are semantically equal iff their consolidations are equal as sets.
pub fn consolidate(stream: &Stream) -> Vec<(Vec<Value>, i64)> {
    let mut acc: FxHashMap<Vec<Value>, i64> = FxHashMap::default();
    for t in stream {
        *acc.entry(t.cols.clone()).or_insert(0) += t.mult;
    }
    let mut out: Vec<(Vec<Value>, i64)> = acc.into_iter().filter(|(_, m)| *m != 0).collect();
    out.sort_by(|a, b| cmp_rows(&a.0, &b.0).then(a.1.cmp(&b.1)));
    out
}

fn cmp_rows(a: &[Value], b: &[Value]) -> std::cmp::Ordering {
    for (x, y) in a.iter().zip(b.iter()) {
        let c = x.total_cmp(y);
        if c != std::cmp::Ordering::Equal {
            return c;
        }
    }
    a.len().cmp(&b.len())
}

/// Multiset equality of two streams (equality after consolidation).
pub fn streams_equal(a: &Stream, b: &Stream) -> bool {
    consolidate(a) == consolidate(b)
}

/// Multiset union `a ∪ b`: concatenation under the ±multiplicity model.
pub fn union(a: &Stream, b: &Stream) -> Stream {
    let o = &crate::obs::ops().union;
    let _g = o.span.start();
    let mut out = a.clone();
    out.extend(b.iter().cloned());
    o.record_cardinality(a.len() + b.len(), out.len());
    out
}

/// Multiset difference `a ⊖ b`: `b`'s tuples contribute with negated
/// multiplicity.
pub fn difference(a: &Stream, b: &Stream) -> Stream {
    let o = &crate::obs::ops().difference;
    let _g = o.span.start();
    let mut out = a.clone();
    out.extend(b.iter().map(Tuple::negated));
    o.record_cardinality(a.len() + b.len(), out.len());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(v: i64) -> Vec<Value> {
        vec![Value::Long(v)]
    }

    #[test]
    fn consolidate_cancels() {
        let s = vec![
            Tuple::new(row(1)),
            Tuple::with_mult(row(1), -1),
            Tuple::new(row(2)),
            Tuple::new(row(2)),
        ];
        let c = consolidate(&s);
        assert_eq!(c, vec![(row(2), 2)]);
    }

    #[test]
    fn union_then_difference_is_identity() {
        let a = stream_of(vec![row(1), row(2)]);
        let b = stream_of(vec![row(2), row(3)]);
        let round = difference(&union(&a, &b), &b);
        assert!(streams_equal(&round, &a));
    }

    #[test]
    fn streams_equal_ignores_order_and_representation() {
        let a = vec![Tuple::new(row(5)), Tuple::new(row(7))];
        let b = vec![
            Tuple::new(row(7)),
            Tuple::new(row(5)),
            Tuple::new(row(9)),
            Tuple::with_mult(row(9), -1),
        ];
        assert!(streams_equal(&a, &b));
        assert!(!streams_equal(&a, &[Tuple::new(row(5))].to_vec()));
    }

    #[test]
    fn edge_tuple_columns() {
        let e = edge_tuple(3, 5, -1);
        assert_eq!(e.cols, vec![Value::Long(3), Value::Long(5)]);
        assert_eq!(e.mult, -1);
        assert_eq!(e.negated().mult, 1);
    }
}
