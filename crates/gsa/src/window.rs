//! Nested Graph Windows (paper §4.2) and the Window-Seek / Window-Join
//! sub-operators of Walk (paper §4.3).
//!
//! A *graph stream* `gs = (vs, es)` is the on-disk graph viewed as a vertex
//! stream plus an edge stream. A *graph window* `gw = (vw, ew)` is a bounded
//! in-memory subgraph loaded from a graph stream. The tuple of k+1 windows
//! `ngw_k = (gw_0, ..., gw_k)` — where `gw_0` is the virtual window of the
//! active vertices — lets walks of length k be enumerated with a fixed
//! amount of memory: each W-Seek loads at most `capacity` vertices (plus
//! their edges) into the next window, and W-Join enumerates walks entirely
//! over the in-memory windows.
//!
//! This module is the *reference* implementation over materialized streams;
//! the engine implements the same logic over the dynamic graph store with
//! buffer-pool IO accounting.

use crate::expr::{eval, Expr, IdRowContext};
use crate::fxhash::FxHashMap;
use crate::tuple::Stream;
use crate::value::VertexId;

/// A materialized graph stream: vertex tuples (id in column 0) and edge
/// tuples (src, dst).
#[derive(Debug, Clone, Default)]
pub struct GraphStream {
    pub vs: Stream,
    pub es: Stream,
}

impl GraphStream {
    pub fn new(vs: Stream, es: Stream) -> GraphStream {
        GraphStream { vs, es }
    }

    /// A graph stream with only edges (vertex attributes not required by
    /// the query, as in P_ω for Triangle Counting).
    pub fn edges_only(es: Stream) -> GraphStream {
        GraphStream { vs: Vec::new(), es }
    }
}

/// A graph window: the subgraph currently loaded into one memory area.
/// `adj` maps each loaded vertex to its (dst, multiplicity) out-edges.
#[derive(Debug, Clone, Default)]
pub struct GraphWindow {
    pub vertices: Vec<(VertexId, i64)>,
    pub adj: FxHashMap<VertexId, Vec<(VertexId, i64)>>,
}

/// One walk produced by W-Join: the vertex sequence and the product of the
/// multiplicities of the joined tuples.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Walk {
    pub vertices: Vec<VertexId>,
    pub mult: i64,
}

/// W-Seek: load the next graph window from `gs`, restricted to the frontier
/// — vertices adjacent to the previous window — in chunks of at most
/// `capacity` vertices. Returns the windows in load order; iterating them
/// all is equivalent to one full pass over the stream per frontier chunk,
/// which is exactly the IO pattern the paper's windowing bounds.
pub fn window_seek(
    gs: &GraphStream,
    frontier: &[VertexId],
    capacity: usize,
) -> Vec<GraphWindow> {
    assert!(capacity > 0, "window capacity must be positive");
    let o = &crate::obs::ops().window_seek;
    let _g = o.span.start();
    let mut windows = Vec::new();
    for chunk in frontier.chunks(capacity) {
        let mut w = GraphWindow::default();
        for &v in chunk {
            w.vertices.push((v, 1));
            let edges: Vec<(VertexId, i64)> = gs
                .es
                .iter()
                .filter_map(|t| {
                    let src = t.cols[0].as_vertex_id()?;
                    let dst = t.cols[1].as_vertex_id()?;
                    (src == v).then_some((dst, t.mult))
                })
                .collect();
            w.adj.insert(v, edges);
        }
        windows.push(w);
    }
    o.record_cardinality(frontier.len(), windows.len());
    windows
}

/// The specification of one Walk operator evaluation: per-hop constraints
/// (the predicate `p_i` pushed into the i-th W-Seek) and a final constraint
/// `p'` applied by W-Join. Constraints reference walk positions via
/// `Expr::WalkVertex`.
#[derive(Debug, Clone, Default)]
pub struct WalkSpec {
    /// Constraint applied when extending the walk to position i+1
    /// (`hop_constraints[i]` may reference positions 0..=i+1).
    pub hop_constraints: Vec<Option<Expr>>,
    /// The walk position hop i extends from. A chain walk has sources
    /// `[0, 1, 2, ...]`; branching walks (e.g. LCC iterating two different
    /// neighbors of u1) repeat a source. `hop_sources[i]` must be ≤ i,
    /// matching the paper's walk definition `(u_l, u_i) ∈ ew_l` for some
    /// `l < i`. Empty means chain.
    pub hop_sources: Vec<usize>,
    /// Final filter over the complete walk.
    pub final_constraint: Option<Expr>,
}

impl WalkSpec {
    pub fn hops(&self) -> usize {
        self.hop_constraints.len()
    }

    /// A chain walk with the given constraints.
    pub fn chain(hop_constraints: Vec<Option<Expr>>, final_constraint: Option<Expr>) -> WalkSpec {
        let hop_sources = (0..hop_constraints.len()).collect();
        WalkSpec {
            hop_constraints,
            hop_sources,
            final_constraint,
        }
    }

    /// Source position of hop `i` (chain by default).
    pub fn source_of(&self, i: usize) -> usize {
        self.hop_sources.get(i).copied().unwrap_or(i)
    }
}

fn check(constraint: &Option<Expr>, prefix: &[VertexId]) -> bool {
    match constraint {
        None => true,
        Some(e) => {
            let ctx = IdRowContext { ids: prefix };
            eval(e, &ctx).map(|v| v.as_bool().unwrap_or(false)).unwrap_or(false)
        }
    }
}

/// Enumerate all walks of length k = `spec.hops()` starting from `starts`,
/// drawing hop i's edges from `streams[i]`, honoring the per-hop and final
/// constraints, with window-bounded memory. Each start carries a
/// multiplicity (±1 for delta starts).
///
/// This is the composition WALK = W-Join(W-Seek(... W-Seek(ngw_0))): at each
/// level the distinct frontier is loaded window-by-window, and once `ngw_k`
/// is resident the nested-loop join emits walks.
pub fn enumerate_walks(
    starts: &[(VertexId, i64)],
    streams: &[GraphStream],
    spec: &WalkSpec,
    capacity: usize,
) -> Vec<Walk> {
    assert_eq!(
        streams.len(),
        spec.hops(),
        "one graph stream per hop is required"
    );
    let o = &crate::obs::ops().walk;
    let _g = o.span.start();
    let mut out = Vec::new();
    let mut prefix: Vec<VertexId> = Vec::with_capacity(spec.hops() + 1);
    for chunk in starts.chunks(capacity.max(1)) {
        for &(v, m) in chunk {
            prefix.push(v);
            recurse(&mut prefix, m, 0, streams, spec, capacity, &mut out);
            prefix.pop();
        }
    }
    o.record_cardinality(starts.len(), out.len());
    out
}

fn recurse(
    prefix: &mut Vec<VertexId>,
    mult: i64,
    hop: usize,
    streams: &[GraphStream],
    spec: &WalkSpec,
    capacity: usize,
    out: &mut Vec<Walk>,
) {
    if hop == spec.hops() {
        if check(&spec.final_constraint, prefix) {
            out.push(Walk {
                vertices: prefix.clone(),
                mult,
            });
        }
        return;
    }
    let u = prefix[spec.source_of(hop)];
    // W-Seek for this hop: load u's adjacency from the hop's stream. The
    // reference implementation seeks one vertex at a time (capacity bounds
    // are exercised at the frontier chunking above and by the engine).
    let windows = window_seek(&streams[hop], &[u], capacity);
    for w in windows {
        if let Some(edges) = w.adj.get(&u) {
            for &(dst, em) in edges {
                prefix.push(dst);
                if check(&spec.hop_constraints[hop], prefix) {
                    recurse(prefix, mult * em, hop + 1, streams, spec, capacity, out);
                }
                prefix.pop();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::BinOp;
    use crate::tuple::edge_tuple;

    /// The paper's running-example graph G_0 (Figure 6), undirected: edges
    /// stored in both directions.
    pub fn g0_edges() -> Stream {
        let undirected = [
            (0u64, 1u64),
            (0, 5),
            (1, 5),
            (2, 3),
            (2, 5),
            (3, 4),
            (4, 5),
            (6, 7),
        ];
        let mut es = Vec::new();
        for (a, b) in undirected {
            es.push(edge_tuple(a, b, 1));
            es.push(edge_tuple(b, a, 1));
        }
        es
    }

    fn tc_spec() -> WalkSpec {
        // For u2 in u1.nbrs Where (u1 < u2)
        // For u3 in u2.nbrs Where (u2 < u3)
        // For u4 in u3.nbrs Where (u4 == u1)
        WalkSpec::chain(vec![
                Some(Expr::bin(BinOp::Lt, Expr::WalkVertex(0), Expr::WalkVertex(1))),
                Some(Expr::bin(BinOp::Lt, Expr::WalkVertex(1), Expr::WalkVertex(2))),
                Some(Expr::bin(BinOp::Eq, Expr::WalkVertex(3), Expr::WalkVertex(0))),
            ], None)
    }

    #[test]
    fn triangle_walks_on_paper_graph() {
        let es = g0_edges();
        let gs = GraphStream::edges_only(es);
        let streams = vec![gs.clone(), gs.clone(), gs];
        let starts: Vec<(VertexId, i64)> = (0..8).map(|v| (v, 1)).collect();
        let walks = enumerate_walks(&starts, &streams, &tc_spec(), 2);
        // G_0 has exactly one triangle, <0,1,5>; <2,3,5> and <3,4,5> only
        // appear after ΔG_1 inserts (3,5) (paper Figure 10).
        let mut tri: Vec<Vec<VertexId>> = walks.iter().map(|w| w.vertices.clone()).collect();
        tri.sort();
        assert_eq!(tri, vec![vec![0, 1, 5, 0]]);
        assert!(walks.iter().all(|w| w.mult == 1));
    }

    #[test]
    fn window_capacity_does_not_change_results() {
        let es = g0_edges();
        let gs = GraphStream::edges_only(es);
        let streams = vec![gs.clone(), gs.clone(), gs];
        let starts: Vec<(VertexId, i64)> = (0..8).map(|v| (v, 1)).collect();
        let w1 = enumerate_walks(&starts, &streams, &tc_spec(), 1);
        let w8 = enumerate_walks(&starts, &streams, &tc_spec(), 8);
        let mut a: Vec<_> = w1.iter().map(|w| w.vertices.clone()).collect();
        let mut b: Vec<_> = w8.iter().map(|w| w.vertices.clone()).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn deleted_edges_produce_negative_walks() {
        // A one-hop walk over a delta stream with a deletion.
        let es = vec![edge_tuple(0, 1, 1), edge_tuple(0, 2, -1)];
        let gs = GraphStream::edges_only(es);
        let spec = WalkSpec::chain(vec![None], None);
        let walks = enumerate_walks(&[(0, 1)], &[gs], &spec, 4);
        let mut got: Vec<(Vec<VertexId>, i64)> =
            walks.into_iter().map(|w| (w.vertices, w.mult)).collect();
        got.sort();
        assert_eq!(got, vec![(vec![0, 1], 1), (vec![0, 2], -1)]);
    }

    #[test]
    fn negative_start_multiplicity_propagates() {
        let es = vec![edge_tuple(0, 1, 1)];
        let gs = GraphStream::edges_only(es);
        let spec = WalkSpec::chain(vec![None], None);
        let walks = enumerate_walks(&[(0, -1)], &[gs], &spec, 4);
        assert_eq!(walks.len(), 1);
        assert_eq!(walks[0].mult, -1);
    }

    #[test]
    fn final_constraint_filters_walks() {
        let es = g0_edges();
        let gs = GraphStream::edges_only(es);
        let spec = WalkSpec::chain(vec![None], Some(Expr::bin(
                BinOp::Gt,
                Expr::WalkVertex(1),
                Expr::lit_long(4),
            )));
        let walks = enumerate_walks(&[(0, 1)], &[gs], &spec, 4);
        // Of 0's neighbors {1, 5}, only 5 survives dst > 4.
        assert_eq!(walks.len(), 1);
        assert_eq!(walks[0].vertices, vec![0, 5]);
    }

    #[test]
    fn window_seek_chunks_frontier() {
        let es = g0_edges();
        let gs = GraphStream::edges_only(es);
        let ws = window_seek(&gs, &[0, 1, 5], 2);
        assert_eq!(ws.len(), 2);
        assert_eq!(ws[0].vertices.len(), 2);
        assert_eq!(ws[1].vertices.len(), 1);
        assert_eq!(ws[0].adj[&0].len(), 2); // v0's neighbors: 1 and 5
    }
}
