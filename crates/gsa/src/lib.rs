//! # itg-gsa — Graph Streaming Algebra
//!
//! The theoretical foundation of iTurboGraph (paper §4): graphs on disk are
//! modeled as streams of tuples with ±1 multiplicities, graph traversals as
//! the enumeration of walks over *Nested Graph Windows*, and queries as
//! trees of streaming operators. The algebra is closed under the
//! incrementalization rules of Table 4, so one-shot and incremental plans
//! run on the same execution engine.
//!
//! Layout:
//! - [`value`]: the `L_NGA` type system's runtime values and typed columns.
//! - [`mod@tuple`]: tuples with signed multiplicity; materialized streams and
//!   their multiset operations.
//! - [`accm`]: accumulate operators — Abelian groups and monoids, with
//!   support-counted Min/Max state (the CNT optimization).
//! - [`expr`]: compiled expressions and their evaluator.
//! - [`ops`]: reference implementations of the scalar stream operators.
//! - [`window`]: Nested Graph Windows, Window-Seek/Window-Join, and the
//!   reference Walk enumerator.
//! - [`plan`]: the algebra plan IR with stream version bindings.
//! - [`incremental`]: the Table 4 rules deriving `P_ΔQ` from `P_Q`.
//! - [`fxhash`]: a fast local hasher for the hash-heavy internals.

pub mod accm;
pub mod expr;
pub mod fxhash;
pub mod incremental;
mod obs;
pub mod ops;
pub mod plan;
pub mod tuple;
pub mod value;
pub mod window;

pub use accm::{AccmOp, CountedAccm, RetractOutcome};
pub use expr::{eval, BinOp, EdgeDir, EvalContext, EvalError, Expr, Func, UnOp};
pub use fxhash::{FxHashMap, FxHashSet};
pub use incremental::{delta_subqueries, incrementalize};
pub use plan::{AlgebraNode, StreamRef, StreamVersion, WriteTarget};
pub use tuple::{consolidate, difference, streams_equal, union, Stream, Tuple};
pub use value::{ColumnData, PrimType, Value, ValueType, VertexId};
pub use window::{enumerate_walks, GraphStream, GraphWindow, Walk, WalkSpec};
