//! Accumulator operations: Abelian groups and monoids.
//!
//! `L_NGA` accumulator types are `Accm<prim, OP>` where `OP` is an operator
//! of an Abelian monoid (paper §3). Operators that additionally have an
//! inverse form an Abelian *group* and can be maintained incrementally under
//! deletions without recomputation (paper §5.4): the accumulation of `x` is
//! offset by accumulating `g(x)`. Monoids without an inverse (`Min`, `Max`)
//! fall back to recomputation — unless the *counting* optimization (CNT,
//! paper §5.4 and §6.4.2) shows the retraction does not affect the result.

use crate::value::{PrimType, Value};
use std::fmt;

/// The accumulate operator of an `Accm<prim, OP>` type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccmOp {
    Sum,
    Prod,
    Min,
    Max,
    Or,
    And,
}

impl AccmOp {
    pub fn parse(name: &str) -> Option<AccmOp> {
        match name.to_ascii_uppercase().as_str() {
            "SUM" => Some(AccmOp::Sum),
            "PROD" | "PRODUCT" => Some(AccmOp::Prod),
            "MIN" => Some(AccmOp::Min),
            "MAX" => Some(AccmOp::Max),
            "OR" => Some(AccmOp::Or),
            "AND" => Some(AccmOp::And),
            _ => None,
        }
    }

    /// The identity element of the monoid for element type `ty`.
    /// Accumulators are reset to this at the start of each superstep
    /// (paper §3).
    pub fn identity(self, ty: PrimType) -> Value {
        match self {
            AccmOp::Sum => ty.zero(),
            AccmOp::Prod => match ty {
                PrimType::Bool => Value::Bool(true),
                PrimType::Int => Value::Int(1),
                PrimType::Long => Value::Long(1),
                PrimType::Float => Value::Float(1.0),
                PrimType::Double => Value::Double(1.0),
            },
            AccmOp::Min => match ty {
                PrimType::Bool => Value::Bool(true),
                PrimType::Int => Value::Int(i32::MAX),
                PrimType::Long => Value::Long(i64::MAX),
                PrimType::Float => Value::Float(f32::INFINITY),
                PrimType::Double => Value::Double(f64::INFINITY),
            },
            AccmOp::Max => match ty {
                PrimType::Bool => Value::Bool(false),
                PrimType::Int => Value::Int(i32::MIN),
                PrimType::Long => Value::Long(i64::MIN),
                PrimType::Float => Value::Float(f32::NEG_INFINITY),
                PrimType::Double => Value::Double(f64::NEG_INFINITY),
            },
            AccmOp::Or => Value::Bool(false),
            AccmOp::And => Value::Bool(true),
        }
    }

    /// `f(a, b)` — the commutative, associative addition of the monoid.
    pub fn combine(self, a: &Value, b: &Value, ty: PrimType) -> Value {
        match self {
            AccmOp::Sum => numeric(ty, a, b, |x, y| x + y, |x, y| x.wrapping_add(y)),
            AccmOp::Prod => numeric(ty, a, b, |x, y| x * y, |x, y| x.wrapping_mul(y)),
            AccmOp::Min => {
                if a.total_cmp(b).is_le() {
                    a.clone()
                } else {
                    b.clone()
                }
            }
            AccmOp::Max => {
                if a.total_cmp(b).is_ge() {
                    a.clone()
                } else {
                    b.clone()
                }
            }
            AccmOp::Or => Value::Bool(a.as_bool().unwrap_or(false) | b.as_bool().unwrap_or(false)),
            AccmOp::And => Value::Bool(a.as_bool().unwrap_or(true) & b.as_bool().unwrap_or(true)),
        }
    }

    /// Whether the operator forms an Abelian *group* (has an inverse).
    /// `Sum` always; `Prod` over the reals except at 0 — the engine treats
    /// `Prod` as group-invertible and falls back to recomputation when the
    /// value being retracted is 0.
    pub fn is_group(self) -> bool {
        matches!(self, AccmOp::Sum | AccmOp::Prod)
    }

    /// The inverse `g(x)` such that `f(x, g(x)) = identity`, for group
    /// operators. Returns `None` for monoid-only operators, and for a
    /// `Prod` retraction of zero (0 has no multiplicative inverse).
    pub fn inverse(self, x: &Value, ty: PrimType) -> Option<Value> {
        match self {
            AccmOp::Sum => Some(numeric(
                ty,
                &ty.zero(),
                x,
                |z, v| z - v,
                |z, v| z.wrapping_sub(v),
            )),
            AccmOp::Prod => {
                let f = x.as_f64()?;
                if f == 0.0 {
                    return None;
                }
                // Integer products are only invertible through recomputation
                // unless the factor is ±1; use the float reciprocal for
                // float types and fall back otherwise.
                match ty {
                    PrimType::Float => Some(Value::Float(1.0 / f as f32)),
                    PrimType::Double => Some(Value::Double(1.0 / f)),
                    PrimType::Int if f.abs() == 1.0 => Some(Value::Int(f as i32)),
                    PrimType::Long if f.abs() == 1.0 => Some(Value::Long(f as i64)),
                    _ => None,
                }
            }
            _ => None,
        }
    }
}

impl fmt::Display for AccmOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AccmOp::Sum => "SUM",
            AccmOp::Prod => "PROD",
            AccmOp::Min => "MIN",
            AccmOp::Max => "MAX",
            AccmOp::Or => "OR",
            AccmOp::And => "AND",
        };
        f.write_str(s)
    }
}

fn numeric(
    ty: PrimType,
    a: &Value,
    b: &Value,
    ff: impl Fn(f64, f64) -> f64,
    fi: impl Fn(i64, i64) -> i64,
) -> Value {
    match ty {
        PrimType::Bool => panic!("numeric accumulator over bool"),
        PrimType::Int => Value::Int(fi(a.as_i64().unwrap_or(0), b.as_i64().unwrap_or(0)) as i32),
        PrimType::Long => Value::Long(fi(a.as_i64().unwrap_or(0), b.as_i64().unwrap_or(0))),
        PrimType::Float => {
            Value::Float(ff(a.as_f64().unwrap_or(0.0), b.as_f64().unwrap_or(0.0)) as f32)
        }
        PrimType::Double => Value::Double(ff(a.as_f64().unwrap_or(0.0), b.as_f64().unwrap_or(0.0))),
    }
}

/// Accumulator state with support counting (the CNT optimization of §5.4):
/// alongside the current Min/Max we keep the number of tuples supporting it,
/// so retracting a non-extremal value — or one of several extremal values —
/// avoids recomputation.
#[derive(Debug, Clone, PartialEq)]
pub struct CountedAccm {
    pub value: Value,
    pub count: u64,
}

/// Result of applying a retraction to a counted Min/Max accumulator.
#[derive(Debug, Clone, PartialEq)]
pub enum RetractOutcome {
    /// The retraction did not touch the extremal value; state unchanged.
    Unaffected,
    /// The extremal value lost one supporter but others remain.
    SupportDecremented,
    /// The sole supporter was retracted: the accumulator must be recomputed
    /// from its inputs.
    NeedsRecompute,
}

impl CountedAccm {
    pub fn identity(op: AccmOp, ty: PrimType) -> CountedAccm {
        CountedAccm {
            value: op.identity(ty),
            count: 0,
        }
    }

    /// Fold one inserted value into the accumulator.
    pub fn insert(&mut self, op: AccmOp, ty: PrimType, v: &Value) {
        if self.count == 0 {
            self.value = v.clone();
            self.count = 1;
            return;
        }
        let combined = op.combine(&self.value, v, ty);
        if &combined == v && combined != self.value {
            // A strictly better extremum replaces the old one.
            self.value = combined;
            self.count = 1;
        } else if v == &self.value {
            self.count += 1;
        } else {
            self.value = combined;
        }
    }

    /// Merge another partial aggregation into this one (the partial
    /// pre-aggregation exchange path): equal extrema add their supports,
    /// otherwise the better extremum wins with its own support.
    pub fn merge(&mut self, other: &CountedAccm, op: AccmOp, ty: PrimType) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let combined = op.combine(&self.value, &other.value, ty);
        if combined == self.value && combined == other.value {
            self.count += other.count;
        } else if combined == other.value {
            *self = other.clone();
        }
        // else: self already holds the better extremum.
    }

    /// Apply one retraction. Only meaningful for `Min`/`Max`.
    pub fn retract(&mut self, v: &Value) -> RetractOutcome {
        if v != &self.value {
            RetractOutcome::Unaffected
        } else if self.count > 1 {
            self.count -= 1;
            RetractOutcome::SupportDecremented
        } else {
            RetractOutcome::NeedsRecompute
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identities() {
        assert_eq!(AccmOp::Sum.identity(PrimType::Double), Value::Double(0.0));
        assert_eq!(AccmOp::Min.identity(PrimType::Long), Value::Long(i64::MAX));
        assert_eq!(AccmOp::Max.identity(PrimType::Int), Value::Int(i32::MIN));
        assert_eq!(AccmOp::And.identity(PrimType::Bool), Value::Bool(true));
    }

    #[test]
    fn sum_group_inverse() {
        let x = Value::Double(2.5);
        let inv = AccmOp::Sum.inverse(&x, PrimType::Double).unwrap();
        let back = AccmOp::Sum.combine(&x, &inv, PrimType::Double);
        assert_eq!(back, Value::Double(0.0));
    }

    #[test]
    fn prod_inverse_except_zero() {
        let inv = AccmOp::Prod.inverse(&Value::Double(4.0), PrimType::Double);
        assert_eq!(inv, Some(Value::Double(0.25)));
        assert_eq!(AccmOp::Prod.inverse(&Value::Double(0.0), PrimType::Double), None);
        assert!(!AccmOp::Min.is_group());
        assert!(AccmOp::Sum.is_group());
    }

    #[test]
    fn min_combine() {
        let m = AccmOp::Min.combine(&Value::Long(5), &Value::Long(2), PrimType::Long);
        assert_eq!(m, Value::Long(2));
    }

    #[test]
    fn counted_min_retraction_cases() {
        // The paper's example: Min({1, 2, 5, 1}) = 1 with support 2.
        let mut a = CountedAccm::identity(AccmOp::Min, PrimType::Long);
        for v in [1, 2, 5, 1] {
            a.insert(AccmOp::Min, PrimType::Long, &Value::Long(v));
        }
        assert_eq!(a.value, Value::Long(1));
        assert_eq!(a.count, 2);

        // Retracting a larger value: no recompute.
        assert_eq!(a.retract(&Value::Long(5)), RetractOutcome::Unaffected);
        // Retracting one of the two 1s: support drops, still no recompute.
        assert_eq!(a.retract(&Value::Long(1)), RetractOutcome::SupportDecremented);
        assert_eq!(a.count, 1);
        // Retracting the last 1: recompute required.
        assert_eq!(a.retract(&Value::Long(1)), RetractOutcome::NeedsRecompute);
    }

    #[test]
    fn counted_insert_better_extremum_resets_support() {
        let mut a = CountedAccm::identity(AccmOp::Max, PrimType::Int);
        a.insert(AccmOp::Max, PrimType::Int, &Value::Int(3));
        a.insert(AccmOp::Max, PrimType::Int, &Value::Int(3));
        assert_eq!(a.count, 2);
        a.insert(AccmOp::Max, PrimType::Int, &Value::Int(9));
        assert_eq!(a.value, Value::Int(9));
        assert_eq!(a.count, 1);
    }

    #[test]
    fn parse_names() {
        assert_eq!(AccmOp::parse("Sum"), Some(AccmOp::Sum));
        assert_eq!(AccmOp::parse("MIN"), Some(AccmOp::Min));
        assert_eq!(AccmOp::parse("bogus"), None);
    }
}
