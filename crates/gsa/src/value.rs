//! Runtime values and typed columnar storage.
//!
//! `L_NGA` provides five primitive data types (`bool`, `int`, `long`,
//! `float`, `double`) plus composite `Array` types (paper §3). All runtime
//! data — vertex attributes, global variables, stream tuple columns — is
//! represented by [`Value`]. Bulk per-vertex storage uses the typed columnar
//! [`ColumnData`] so the hot path never boxes.
//!
//! Equality and hashing of floating-point values are *bitwise*: two values
//! compare equal iff their bit patterns match. This makes `Value` usable as a
//! key and makes "did this attribute change?" (the trigger for delta
//! generation, paper §5.2) a well-defined question.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// Vertex identifier. Graphs are addressed by dense ids `0..n`.
pub type VertexId = u64;

/// The five primitive types of `L_NGA` (paper §3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrimType {
    Bool,
    Int,
    Long,
    Float,
    Double,
}

impl PrimType {
    /// The zero/default value of this type.
    pub fn zero(self) -> Value {
        match self {
            PrimType::Bool => Value::Bool(false),
            PrimType::Int => Value::Int(0),
            PrimType::Long => Value::Long(0),
            PrimType::Float => Value::Float(0.0),
            PrimType::Double => Value::Double(0.0),
        }
    }

    /// Whether this is a numeric (non-bool) type.
    pub fn is_numeric(self) -> bool {
        !matches!(self, PrimType::Bool)
    }

    /// Whether this is a floating-point type.
    pub fn is_float(self) -> bool {
        matches!(self, PrimType::Float | PrimType::Double)
    }

    /// Numeric promotion of two primitive types (the wider wins; any float
    /// beats any integer).
    pub fn promote(self, other: PrimType) -> Option<PrimType> {
        use PrimType::*;
        match (self, other) {
            (Bool, Bool) => Some(Bool),
            (Bool, _) | (_, Bool) => None,
            (Double, _) | (_, Double) => Some(Double),
            (Float, _) | (_, Float) => Some(Float),
            (Long, _) | (_, Long) => Some(Long),
            (Int, Int) => Some(Int),
        }
    }
}

impl fmt::Display for PrimType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PrimType::Bool => "bool",
            PrimType::Int => "int",
            PrimType::Long => "long",
            PrimType::Float => "float",
            PrimType::Double => "double",
        };
        f.write_str(s)
    }
}

/// A full value type: a primitive or a fixed-size array of a primitive
/// (`Array<type, size>`, paper §3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueType {
    Prim(PrimType),
    Array(PrimType, usize),
}

impl ValueType {
    /// Zero value of this type (arrays are zero-filled).
    pub fn zero(self) -> Value {
        match self {
            ValueType::Prim(p) => p.zero(),
            ValueType::Array(p, n) => Value::Array(vec![p.zero(); n]),
        }
    }

    pub fn prim(self) -> Option<PrimType> {
        match self {
            ValueType::Prim(p) => Some(p),
            ValueType::Array(..) => None,
        }
    }
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValueType::Prim(p) => write!(f, "{p}"),
            ValueType::Array(p, n) => write!(f, "Array<{p}, {n}>"),
        }
    }
}

/// A dynamically-typed runtime value.
#[derive(Debug, Clone)]
pub enum Value {
    Bool(bool),
    Int(i32),
    Long(i64),
    Float(f32),
    Double(f64),
    Array(Vec<Value>),
}

impl Value {
    /// The type of this value (array element type taken from the first
    /// element; empty arrays report `double` elements).
    pub fn value_type(&self) -> ValueType {
        match self {
            Value::Bool(_) => ValueType::Prim(PrimType::Bool),
            Value::Int(_) => ValueType::Prim(PrimType::Int),
            Value::Long(_) => ValueType::Prim(PrimType::Long),
            Value::Float(_) => ValueType::Prim(PrimType::Float),
            Value::Double(_) => ValueType::Prim(PrimType::Double),
            Value::Array(v) => {
                let elem = v
                    .first()
                    .and_then(|e| e.value_type().prim())
                    .unwrap_or(PrimType::Double);
                ValueType::Array(elem, v.len())
            }
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Widen to `f64` for arithmetic; `None` for bools/arrays.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Long(v) => Some(*v as f64),
            Value::Float(v) => Some(*v as f64),
            Value::Double(v) => Some(*v),
            _ => None,
        }
    }

    /// Widen to `i64`; `None` for non-integers.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v as i64),
            Value::Long(v) => Some(*v),
            _ => None,
        }
    }

    /// Interpret as a vertex id. Ids are stored as `Long`.
    pub fn as_vertex_id(&self) -> Option<VertexId> {
        self.as_i64().map(|v| v as VertexId)
    }

    /// Cast (numeric conversion) to the given primitive type.
    pub fn cast(&self, ty: PrimType) -> Option<Value> {
        if ty == PrimType::Bool {
            return self.as_bool().map(Value::Bool);
        }
        let f = self.as_f64()?;
        Some(match ty {
            PrimType::Bool => unreachable!(),
            PrimType::Int => Value::Int(f as i32),
            PrimType::Long => Value::Long(f as i64),
            PrimType::Float => Value::Float(f as f32),
            PrimType::Double => Value::Double(f),
        })
    }

    /// Total ordering used by comparison operators and Min/Max accumulators.
    /// Numeric values compare by widened magnitude; NaN sorts above all
    /// numbers (so it never wins a Min).
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        match (self, other) {
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Array(a), Value::Array(b)) => {
                for (x, y) in a.iter().zip(b.iter()) {
                    let c = x.total_cmp(y);
                    if c != Ordering::Equal {
                        return c;
                    }
                }
                a.len().cmp(&b.len())
            }
            _ => match (self.as_i64(), other.as_i64()) {
                (Some(a), Some(b)) => a.cmp(&b),
                _ => {
                    let a = self.as_f64().unwrap_or(f64::NAN);
                    let b = other.as_f64().unwrap_or(f64::NAN);
                    a.total_cmp(&b)
                }
            },
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Long(a), Value::Long(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a.to_bits() == b.to_bits(),
            (Value::Double(a), Value::Double(b)) => a.to_bits() == b.to_bits(),
            (Value::Array(a), Value::Array(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        core::mem::discriminant(self).hash(state);
        match self {
            Value::Bool(v) => v.hash(state),
            Value::Int(v) => v.hash(state),
            Value::Long(v) => v.hash(state),
            Value::Float(v) => v.to_bits().hash(state),
            Value::Double(v) => v.to_bits().hash(state),
            Value::Array(v) => v.hash(state),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bool(v) => write!(f, "{v}"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Long(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Double(v) => write!(f, "{v}"),
            Value::Array(v) => {
                write!(f, "[")?;
                for (i, e) in v.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, "]")
            }
        }
    }
}

/// Typed columnar storage for one attribute across all vertices of a
/// partition. Avoids per-value boxing on the engine's hot paths.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    Bool(Vec<bool>),
    Int(Vec<i32>),
    Long(Vec<i64>),
    Float(Vec<f32>),
    Double(Vec<f64>),
    Array(Vec<Vec<Value>>),
}

impl ColumnData {
    /// A zero-filled column of `len` values of type `ty`.
    pub fn zeros(ty: ValueType, len: usize) -> ColumnData {
        match ty {
            ValueType::Prim(PrimType::Bool) => ColumnData::Bool(vec![false; len]),
            ValueType::Prim(PrimType::Int) => ColumnData::Int(vec![0; len]),
            ValueType::Prim(PrimType::Long) => ColumnData::Long(vec![0; len]),
            ValueType::Prim(PrimType::Float) => ColumnData::Float(vec![0.0; len]),
            ValueType::Prim(PrimType::Double) => ColumnData::Double(vec![0.0; len]),
            ValueType::Array(p, n) => ColumnData::Array(vec![vec![p.zero(); n]; len]),
        }
    }

    pub fn len(&self) -> usize {
        match self {
            ColumnData::Bool(v) => v.len(),
            ColumnData::Int(v) => v.len(),
            ColumnData::Long(v) => v.len(),
            ColumnData::Float(v) => v.len(),
            ColumnData::Double(v) => v.len(),
            ColumnData::Array(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn get(&self, i: usize) -> Value {
        match self {
            ColumnData::Bool(v) => Value::Bool(v[i]),
            ColumnData::Int(v) => Value::Int(v[i]),
            ColumnData::Long(v) => Value::Long(v[i]),
            ColumnData::Float(v) => Value::Float(v[i]),
            ColumnData::Double(v) => Value::Double(v[i]),
            ColumnData::Array(v) => Value::Array(v[i].clone()),
        }
    }

    /// Set slot `i`. Panics on a type mismatch: columns are typed at
    /// creation and the compiler's type checker guarantees writes conform.
    pub fn set(&mut self, i: usize, value: &Value) {
        match (self, value) {
            (ColumnData::Bool(v), Value::Bool(x)) => v[i] = *x,
            (ColumnData::Int(v), Value::Int(x)) => v[i] = *x,
            (ColumnData::Long(v), Value::Long(x)) => v[i] = *x,
            (ColumnData::Float(v), Value::Float(x)) => v[i] = *x,
            (ColumnData::Double(v), Value::Double(x)) => v[i] = *x,
            (ColumnData::Array(v), Value::Array(x)) => v[i] = x.clone(),
            (col, val) => panic!(
                "column type mismatch: cannot store {val:?} in {} column",
                col.type_name()
            ),
        }
    }

    /// Approximate byte size of one element, used for IO accounting.
    pub fn elem_bytes(&self) -> usize {
        match self {
            ColumnData::Bool(_) => 1,
            ColumnData::Int(_) | ColumnData::Float(_) => 4,
            ColumnData::Long(_) | ColumnData::Double(_) => 8,
            ColumnData::Array(v) => v.first().map_or(8, |a| a.len() * 8),
        }
    }

    fn type_name(&self) -> &'static str {
        match self {
            ColumnData::Bool(_) => "bool",
            ColumnData::Int(_) => "int",
            ColumnData::Long(_) => "long",
            ColumnData::Float(_) => "float",
            ColumnData::Double(_) => "double",
            ColumnData::Array(_) => "array",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn promote_widens() {
        assert_eq!(
            PrimType::Int.promote(PrimType::Double),
            Some(PrimType::Double)
        );
        assert_eq!(PrimType::Int.promote(PrimType::Long), Some(PrimType::Long));
        assert_eq!(
            PrimType::Float.promote(PrimType::Long),
            Some(PrimType::Float)
        );
        assert_eq!(PrimType::Bool.promote(PrimType::Int), None);
    }

    #[test]
    fn float_equality_is_bitwise() {
        assert_eq!(Value::Double(0.5), Value::Double(0.5));
        let next_up = f64::from_bits(0.5f64.to_bits() + 1);
        assert_ne!(Value::Double(0.5), Value::Double(next_up));
        assert_eq!(Value::Double(f64::NAN), Value::Double(f64::NAN));
        // +0.0 and -0.0 differ bitwise, so they count as a change.
        assert_ne!(Value::Double(0.0), Value::Double(-0.0));
    }

    #[test]
    fn mixed_numeric_ordering() {
        assert_eq!(
            Value::Int(3).total_cmp(&Value::Double(3.5)),
            Ordering::Less
        );
        assert_eq!(Value::Long(7).total_cmp(&Value::Int(7)), Ordering::Equal);
        // NaN never beats a number in a Min.
        assert_eq!(
            Value::Double(f64::NAN).total_cmp(&Value::Double(1e300)),
            Ordering::Greater
        );
    }

    #[test]
    fn cast_roundtrips() {
        assert_eq!(Value::Double(3.9).cast(PrimType::Int), Some(Value::Int(3)));
        assert_eq!(Value::Int(5).cast(PrimType::Double), Some(Value::Double(5.0)));
        assert_eq!(Value::Bool(true).cast(PrimType::Int), None);
    }

    #[test]
    fn column_get_set() {
        let mut c = ColumnData::zeros(ValueType::Prim(PrimType::Double), 4);
        c.set(2, &Value::Double(1.5));
        assert_eq!(c.get(2), Value::Double(1.5));
        assert_eq!(c.get(0), Value::Double(0.0));
        assert_eq!(c.len(), 4);
        assert_eq!(c.elem_bytes(), 8);
    }

    #[test]
    fn array_columns() {
        let mut c = ColumnData::zeros(ValueType::Array(PrimType::Float, 3), 2);
        let v = Value::Array(vec![
            Value::Float(1.0),
            Value::Float(2.0),
            Value::Float(3.0),
        ]);
        c.set(1, &v);
        assert_eq!(c.get(1), v);
        assert_eq!(c.elem_bytes(), 24);
    }

    #[test]
    #[should_panic(expected = "column type mismatch")]
    fn column_type_mismatch_panics() {
        let mut c = ColumnData::zeros(ValueType::Prim(PrimType::Int), 1);
        c.set(0, &Value::Double(1.0));
    }
}
