//! Instruments for the reference stream operators.
//!
//! Each Table 3 operator gets a span (`gsa/<op>`) plus tuple-cardinality
//! counters (`gsa/<op>/tuples_in`, `gsa/<op>/tuples_out`), resolved once
//! from [`itg_obs::global`] and cached for the process lifetime. With the
//! global recorder disabled (the default) every handle is a single-branch
//! no-op, so the reference semantics stay unpolluted by clock reads.

use std::sync::OnceLock;

/// The span + in/out counters of one reference operator.
pub(crate) struct OpObs {
    pub span: itg_obs::SpanHandle,
    tuples_in: itg_obs::CounterHandle,
    tuples_out: itg_obs::CounterHandle,
}

impl OpObs {
    fn resolve(
        rec: &itg_obs::Recorder,
        span: &'static str,
        tin: &'static str,
        tout: &'static str,
    ) -> OpObs {
        OpObs {
            span: rec.span(span),
            tuples_in: rec.counter(tin),
            tuples_out: rec.counter(tout),
        }
    }

    /// Record the operator's input/output cardinalities (no-op when the
    /// global recorder is disabled).
    pub fn record_cardinality(&self, n_in: usize, n_out: usize) {
        if self.span.is_enabled() {
            self.tuples_in.add(n_in as u64);
            self.tuples_out.add(n_out as u64);
        }
    }
}

/// One `OpObs` per reference operator, in Table 3 order.
pub(crate) struct GsaObs {
    pub filter: OpObs,
    pub map: OpObs,
    pub union: OpObs,
    pub difference: OpObs,
    pub accumulate: OpObs,
    pub accumulate_global: OpObs,
    pub assign: OpObs,
    pub window_seek: OpObs,
    pub walk: OpObs,
}

/// The process-wide operator instruments, resolved on first use.
pub(crate) fn ops() -> &'static GsaObs {
    static OPS: OnceLock<GsaObs> = OnceLock::new();
    OPS.get_or_init(|| {
        let r = itg_obs::global();
        GsaObs {
            filter: OpObs::resolve(r, "gsa/filter", "gsa/filter/tuples_in", "gsa/filter/tuples_out"),
            map: OpObs::resolve(r, "gsa/map", "gsa/map/tuples_in", "gsa/map/tuples_out"),
            union: OpObs::resolve(r, "gsa/union", "gsa/union/tuples_in", "gsa/union/tuples_out"),
            difference: OpObs::resolve(
                r,
                "gsa/difference",
                "gsa/difference/tuples_in",
                "gsa/difference/tuples_out",
            ),
            accumulate: OpObs::resolve(
                r,
                "gsa/accumulate",
                "gsa/accumulate/tuples_in",
                "gsa/accumulate/tuples_out",
            ),
            accumulate_global: OpObs::resolve(
                r,
                "gsa/accumulate_global",
                "gsa/accumulate_global/tuples_in",
                "gsa/accumulate_global/tuples_out",
            ),
            assign: OpObs::resolve(r, "gsa/assign", "gsa/assign/tuples_in", "gsa/assign/tuples_out"),
            window_seek: OpObs::resolve(
                r,
                "gsa/window_seek",
                "gsa/window_seek/tuples_in",
                "gsa/window_seek/tuples_out",
            ),
            walk: OpObs::resolve(r, "gsa/walk", "gsa/walk/tuples_in", "gsa/walk/tuples_out"),
        }
    })
}

#[cfg(test)]
mod tests {
    #[test]
    fn resolving_twice_returns_the_same_instance() {
        let a = super::ops() as *const _;
        let b = super::ops() as *const _;
        assert_eq!(a, b);
    }
}
