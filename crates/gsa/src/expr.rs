//! Compiled expressions evaluated against walk contexts.
//!
//! After compilation (Let-bindings substituted, names resolved to indexes),
//! an expression references only: walk positions (vertex ids `u1..u_{k+1}`),
//! attributes of those vertices, global variables, and literals. The
//! evaluator is a small tree-walking interpreter; the engine's hot paths
//! pre-extract the common special cases (pure-id order constraints) so the
//! interpreter is off the innermost loop where possible.

use crate::value::{PrimType, Value, VertexId};
use std::fmt;

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    And,
    Or,
}

impl BinOp {
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne
        )
    }

    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    Neg,
    Not,
}

/// Built-in scalar functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Func {
    Abs,
    Min,
    Max,
}

/// Which adjacency direction a degree or neighbor set refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeDir {
    Out,
    In,
    /// Undirected (`nbrs` / `degree`): the graph stores mirrored edges and
    /// the out direction serves both.
    Both,
}

/// A compiled expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Literal value.
    Lit(Value),
    /// The vertex id at walk position `pos` (0-based: u1 is position 0).
    WalkVertex(usize),
    /// Attribute `attr` (by index) of the vertex at walk position `pos`.
    /// After incrementalization, attribute reads are restricted to `pos == 0`
    /// (paper §4.4: vs_2, vs_3 drop out of P_ω).
    Attr { pos: usize, attr: usize },
    /// Global variable by index.
    Global(usize),
    /// The degree of the vertex at walk position `pos`. Degrees are
    /// logically part of the vertex stream (they change under edge
    /// mutations), so the evaluation context serves them from the view
    /// matching the stream binding.
    Degree { pos: usize, dir: EdgeDir },
    /// Element of an array attribute: `Attr[pos, attr][idx]`.
    AttrElem { pos: usize, attr: usize, idx: Box<Expr> },
    /// The number of vertices `V` (used e.g. by PageRank's `0.15 / V`).
    NumVertices,
    Unary(UnOp, Box<Expr>),
    Binary(BinOp, Box<Expr>, Box<Expr>),
    Call(Func, Vec<Expr>),
    /// Numeric cast inserted by the type checker.
    Cast(PrimType, Box<Expr>),
}

impl Expr {
    pub fn lit_long(v: i64) -> Expr {
        Expr::Lit(Value::Long(v))
    }

    pub fn lit_double(v: f64) -> Expr {
        Expr::Lit(Value::Double(v))
    }

    pub fn lit_bool(v: bool) -> Expr {
        Expr::Lit(Value::Bool(v))
    }

    pub fn bin(op: BinOp, l: Expr, r: Expr) -> Expr {
        Expr::Binary(op, Box::new(l), Box::new(r))
    }

    /// The conjunction of two optional predicates.
    pub fn and_opt(a: Option<Expr>, b: Option<Expr>) -> Option<Expr> {
        match (a, b) {
            (None, x) | (x, None) => x,
            (Some(a), Some(b)) => Some(Expr::bin(BinOp::And, a, b)),
        }
    }

    /// The highest walk position this expression references, if any.
    pub fn max_walk_pos(&self) -> Option<usize> {
        let mut max: Option<usize> = None;
        self.visit(&mut |e| {
            let p = match e {
                Expr::WalkVertex(p) => Some(*p),
                Expr::Attr { pos, .. }
                | Expr::AttrElem { pos, .. }
                | Expr::Degree { pos, .. } => Some(*pos),
                _ => None,
            };
            if let Some(p) = p {
                max = Some(max.map_or(p, |m| m.max(p)));
            }
        });
        max
    }

    /// Whether the expression reads vertex attributes (not just ids) at a
    /// walk position other than u1. Such reads are rejected for incremental
    /// compilation (see DESIGN.md §4.3).
    pub fn reads_deep_attrs(&self) -> bool {
        let mut found = false;
        self.visit(&mut |e| {
            if let Expr::Attr { pos, .. }
            | Expr::AttrElem { pos, .. }
            | Expr::Degree { pos, .. } = e
            {
                if *pos > 0 {
                    found = true;
                }
            }
        });
        found
    }

    /// Pre-order visit of the expression tree.
    pub fn visit(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Unary(_, e) | Expr::Cast(_, e) => e.visit(f),
            Expr::Binary(_, l, r) => {
                l.visit(f);
                r.visit(f);
            }
            Expr::Call(_, args) => {
                for a in args {
                    a.visit(f);
                }
            }
            Expr::AttrElem { idx, .. } => idx.visit(f),
            _ => {}
        }
    }
}

/// Evaluation context: resolves walk positions, attributes, and globals.
pub trait EvalContext {
    /// Vertex id at walk position `pos`.
    fn walk_vertex(&self, pos: usize) -> VertexId;
    /// Attribute value of the vertex at walk position `pos`.
    fn vertex_attr(&self, pos: usize, attr: usize) -> Value;
    /// Global variable value.
    fn global(&self, idx: usize) -> Value;
    /// `V`, the number of vertices.
    fn num_vertices(&self) -> u64;
    /// Degree of the vertex at walk position `pos` (from the view matching
    /// the position's stream binding). Contexts without graph access keep
    /// the default.
    fn vertex_degree(&self, _pos: usize, _dir: EdgeDir) -> i64 {
        panic!("this evaluation context has no degree information")
    }
}

/// Errors raised during evaluation (type errors are normally prevented by
/// the type checker; these defend the algebra layer when driven directly).
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    TypeMismatch(&'static str),
    DivisionByZero,
    IndexOutOfBounds { idx: i64, len: usize },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::TypeMismatch(what) => write!(f, "type mismatch: {what}"),
            EvalError::DivisionByZero => write!(f, "division by zero"),
            EvalError::IndexOutOfBounds { idx, len } => {
                write!(f, "array index {idx} out of bounds (len {len})")
            }
        }
    }
}

impl std::error::Error for EvalError {}

/// Evaluate `expr` against `ctx`.
pub fn eval(expr: &Expr, ctx: &dyn EvalContext) -> Result<Value, EvalError> {
    match expr {
        Expr::Lit(v) => Ok(v.clone()),
        Expr::WalkVertex(pos) => Ok(Value::Long(ctx.walk_vertex(*pos) as i64)),
        Expr::Attr { pos, attr } => Ok(ctx.vertex_attr(*pos, *attr)),
        Expr::Global(idx) => Ok(ctx.global(*idx)),
        Expr::Degree { pos, dir } => Ok(Value::Long(ctx.vertex_degree(*pos, *dir))),
        Expr::NumVertices => Ok(Value::Long(ctx.num_vertices() as i64)),
        Expr::AttrElem { pos, attr, idx } => {
            let arr = ctx.vertex_attr(*pos, *attr);
            let i = eval(idx, ctx)?
                .as_i64()
                .ok_or(EvalError::TypeMismatch("array index must be integer"))?;
            match arr {
                Value::Array(v) => v
                    .get(i as usize)
                    .cloned()
                    .ok_or(EvalError::IndexOutOfBounds { idx: i, len: v.len() }),
                _ => Err(EvalError::TypeMismatch("indexing a non-array attribute")),
            }
        }
        Expr::Unary(op, e) => {
            let v = eval(e, ctx)?;
            match op {
                UnOp::Not => v
                    .as_bool()
                    .map(|b| Value::Bool(!b))
                    .ok_or(EvalError::TypeMismatch("! on non-bool")),
                UnOp::Neg => match v {
                    Value::Int(x) => Ok(Value::Int(-x)),
                    Value::Long(x) => Ok(Value::Long(-x)),
                    Value::Float(x) => Ok(Value::Float(-x)),
                    Value::Double(x) => Ok(Value::Double(-x)),
                    _ => Err(EvalError::TypeMismatch("unary - on non-numeric")),
                },
            }
        }
        Expr::Binary(op, l, r) => {
            if op.is_logical() {
                // Short-circuit evaluation.
                let lv = eval(l, ctx)?
                    .as_bool()
                    .ok_or(EvalError::TypeMismatch("logical op on non-bool"))?;
                return match (op, lv) {
                    (BinOp::And, false) => Ok(Value::Bool(false)),
                    (BinOp::Or, true) => Ok(Value::Bool(true)),
                    _ => eval(r, ctx)?
                        .as_bool()
                        .map(Value::Bool)
                        .ok_or(EvalError::TypeMismatch("logical op on non-bool")),
                };
            }
            let lv = eval(l, ctx)?;
            let rv = eval(r, ctx)?;
            if op.is_comparison() {
                let c = lv.total_cmp(&rv);
                let b = match op {
                    BinOp::Lt => c.is_lt(),
                    BinOp::Le => c.is_le(),
                    BinOp::Gt => c.is_gt(),
                    BinOp::Ge => c.is_ge(),
                    BinOp::Eq => c.is_eq(),
                    BinOp::Ne => c.is_ne(),
                    _ => unreachable!(),
                };
                return Ok(Value::Bool(b));
            }
            arith(*op, &lv, &rv)
        }
        Expr::Call(f, args) => {
            let vals: Vec<Value> = args
                .iter()
                .map(|a| eval(a, ctx))
                .collect::<Result<_, _>>()?;
            match f {
                Func::Abs => match &vals[0] {
                    Value::Int(x) => Ok(Value::Int(x.abs())),
                    Value::Long(x) => Ok(Value::Long(x.abs())),
                    Value::Float(x) => Ok(Value::Float(x.abs())),
                    Value::Double(x) => Ok(Value::Double(x.abs())),
                    _ => Err(EvalError::TypeMismatch("Abs on non-numeric")),
                },
                Func::Min => Ok(if vals[0].total_cmp(&vals[1]).is_le() {
                    vals[0].clone()
                } else {
                    vals[1].clone()
                }),
                Func::Max => Ok(if vals[0].total_cmp(&vals[1]).is_ge() {
                    vals[0].clone()
                } else {
                    vals[1].clone()
                }),
            }
        }
        Expr::Cast(ty, e) => {
            let v = eval(e, ctx)?;
            v.cast(*ty)
                .ok_or(EvalError::TypeMismatch("invalid cast"))
        }
    }
}

fn arith(op: BinOp, l: &Value, r: &Value) -> Result<Value, EvalError> {
    // Integer arithmetic when both sides are integers; float otherwise.
    //
    // Division and modulo are TOTAL: x/0 = 0 and x%0 = 0 (floats too).
    // This is a deliberate language semantic, not a convenience: the
    // incremental decomposition of Rule ⑦ evaluates each sub-query term
    // independently, and a term can pair a new attribute image (e.g. a
    // degree that dropped to zero after deletions) with old edges. The
    // offending terms cancel exactly in the union, but only if each is
    // well-defined on its own — totalizing division makes them so.
    if let (Some(a), Some(b)) = (l.as_i64(), r.as_i64()) {
        let v = match op {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::Div => {
                if b == 0 {
                    0
                } else {
                    a / b
                }
            }
            BinOp::Mod => {
                if b == 0 {
                    0
                } else {
                    a % b
                }
            }
            _ => return Err(EvalError::TypeMismatch("non-arithmetic operator")),
        };
        // Preserve Int width when both inputs are Int.
        return Ok(match (l, r) {
            (Value::Int(_), Value::Int(_)) => Value::Int(v as i32),
            _ => Value::Long(v),
        });
    }
    let a = l.as_f64().ok_or(EvalError::TypeMismatch("arith on non-numeric"))?;
    let b = r.as_f64().ok_or(EvalError::TypeMismatch("arith on non-numeric"))?;
    let v = match op {
        BinOp::Add => a + b,
        BinOp::Sub => a - b,
        BinOp::Mul => a * b,
        BinOp::Div => {
            if b == 0.0 {
                0.0
            } else {
                a / b
            }
        }
        BinOp::Mod => {
            if b == 0.0 {
                0.0
            } else {
                a % b
            }
        }
        _ => return Err(EvalError::TypeMismatch("non-arithmetic operator")),
    };
    // Preserve Float width when neither side is Double.
    Ok(match (l, r) {
        (Value::Double(_), _) | (_, Value::Double(_)) => Value::Double(v),
        _ => Value::Float(v as f32),
    })
}

/// A context over plain id rows with no attributes or globals — used by the
/// algebra reference layer where walks are tuples of ids.
pub struct IdRowContext<'a> {
    pub ids: &'a [VertexId],
}

impl EvalContext for IdRowContext<'_> {
    fn walk_vertex(&self, pos: usize) -> VertexId {
        self.ids[pos]
    }

    fn vertex_attr(&self, _pos: usize, _attr: usize) -> Value {
        panic!("IdRowContext has no attributes")
    }

    fn global(&self, _idx: usize) -> Value {
        panic!("IdRowContext has no globals")
    }

    fn num_vertices(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TestCtx;
    impl EvalContext for TestCtx {
        fn walk_vertex(&self, pos: usize) -> VertexId {
            (pos as u64 + 1) * 10
        }
        fn vertex_attr(&self, pos: usize, attr: usize) -> Value {
            match attr {
                0 => Value::Double(0.5 * (pos + 1) as f64),
                1 => Value::Int(4),
                _ => Value::Array(vec![Value::Long(7), Value::Long(8)]),
            }
        }
        fn global(&self, _idx: usize) -> Value {
            Value::Long(100)
        }
        fn num_vertices(&self) -> u64 {
            8
        }
    }

    #[test]
    fn pagerank_value_expression() {
        // u.rank / u.out_degree where rank=0.5 and out_degree=4.
        let e = Expr::bin(
            BinOp::Div,
            Expr::Attr { pos: 0, attr: 0 },
            Expr::Attr { pos: 0, attr: 1 },
        );
        assert_eq!(eval(&e, &TestCtx).unwrap(), Value::Double(0.125));
    }

    #[test]
    fn order_constraint() {
        // u1 < u2 over walk (10, 20).
        let e = Expr::bin(BinOp::Lt, Expr::WalkVertex(0), Expr::WalkVertex(1));
        assert_eq!(eval(&e, &TestCtx).unwrap(), Value::Bool(true));
        let e = Expr::bin(BinOp::Eq, Expr::WalkVertex(2), Expr::WalkVertex(0));
        assert_eq!(eval(&e, &TestCtx).unwrap(), Value::Bool(false));
    }

    #[test]
    fn teleport_term_uses_num_vertices() {
        // 0.15 / V
        let e = Expr::bin(BinOp::Div, Expr::lit_double(0.15), Expr::NumVertices);
        assert_eq!(eval(&e, &TestCtx).unwrap(), Value::Double(0.15 / 8.0));
    }

    #[test]
    fn short_circuit_avoids_rhs_error() {
        // false AND (1/0 == 1) must not evaluate the division.
        let div = Expr::bin(BinOp::Div, Expr::lit_long(1), Expr::lit_long(0));
        let e = Expr::bin(
            BinOp::And,
            Expr::lit_bool(false),
            Expr::bin(BinOp::Eq, div, Expr::lit_long(1)),
        );
        assert_eq!(eval(&e, &TestCtx).unwrap(), Value::Bool(false));
    }

    #[test]
    fn division_is_total() {
        // x/0 = 0 by language definition (required for the Rule ⑦ terms
        // to be individually well-defined; see `arith`).
        let e = Expr::bin(BinOp::Div, Expr::lit_long(1), Expr::lit_long(0));
        assert_eq!(eval(&e, &TestCtx).unwrap(), Value::Long(0));
        let e = Expr::bin(BinOp::Div, Expr::lit_double(1.0), Expr::lit_double(0.0));
        assert_eq!(eval(&e, &TestCtx).unwrap(), Value::Double(0.0));
        let e = Expr::bin(BinOp::Mod, Expr::lit_long(7), Expr::lit_long(0));
        assert_eq!(eval(&e, &TestCtx).unwrap(), Value::Long(0));
    }

    #[test]
    fn array_indexing() {
        let e = Expr::AttrElem {
            pos: 0,
            attr: 2,
            idx: Box::new(Expr::lit_long(1)),
        };
        assert_eq!(eval(&e, &TestCtx).unwrap(), Value::Long(8));
        let oob = Expr::AttrElem {
            pos: 0,
            attr: 2,
            idx: Box::new(Expr::lit_long(5)),
        };
        assert!(matches!(
            eval(&oob, &TestCtx),
            Err(EvalError::IndexOutOfBounds { .. })
        ));
    }

    #[test]
    fn deep_attr_detection() {
        let shallow = Expr::Attr { pos: 0, attr: 0 };
        let deep = Expr::bin(
            BinOp::Add,
            Expr::Attr { pos: 0, attr: 0 },
            Expr::Attr { pos: 2, attr: 0 },
        );
        assert!(!shallow.reads_deep_attrs());
        assert!(deep.reads_deep_attrs());
        assert_eq!(deep.max_walk_pos(), Some(2));
    }

    #[test]
    fn abs_and_minmax() {
        let e = Expr::Call(Func::Abs, vec![Expr::lit_double(-2.0)]);
        assert_eq!(eval(&e, &TestCtx).unwrap(), Value::Double(2.0));
        let e = Expr::Call(Func::Min, vec![Expr::lit_long(3), Expr::lit_long(9)]);
        assert_eq!(eval(&e, &TestCtx).unwrap(), Value::Long(3));
    }

    #[test]
    fn casts() {
        let e = Expr::Cast(PrimType::Int, Box::new(Expr::lit_double(7.9)));
        assert_eq!(eval(&e, &TestCtx).unwrap(), Value::Int(7));
    }
}
