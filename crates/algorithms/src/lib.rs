//! # itg-algorithms — the paper's evaluation algorithms (§6.1)
//!
//! - [`programs`]: the six analysis algorithms as `L_NGA` source text —
//!   PageRank and Label Propagation (Group 1, matrix-vector), WCC and BFS
//!   (Group 2, connectivity / Min-monoid), Triangle Counting and Local
//!   Clustering Coefficient (Group 3, multi-hop NGA).
//! - [`native`]: independent reference implementations with identical BSP
//!   semantics, used by the test suites to validate the engine's one-shot
//!   and incremental execution bit-for-bit.

pub mod native;
pub mod programs;

pub use native::SimpleGraph;
