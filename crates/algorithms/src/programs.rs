//! The paper's six evaluation algorithms as `L_NGA` source programs
//! (§6.1): Group 1 — PageRank (PR) and Label Propagation (LP), the
//! matrix-vector multiplication algorithms; Group 2 — Weakly Connected
//! Components (WCC) and Breadth-First Search (BFS), the graph connectivity
//! algorithms; Group 3 — Triangle Counting (TC) and Local Clustering
//! Coefficient (LCC), the multi-hop NGA.
//!
//! Following the paper's own protocol for the Differential Dataflow
//! comparison, PR and LP use integer arithmetic with values scaled by
//! 1000 ("equivalent to rounding the floating numbers down to three
//! decimal places", §6.1). This also makes results bit-exact across the
//! one-shot, incremental, and reference execution paths, which the test
//! suite exploits.

/// PageRank, integer-scaled by 1000: rank = 150 + 0.85 · Σ rank/out_deg.
/// Directed; runs until the scaled ranks stabilize (cap supersteps to 10
/// for the paper's Group 1 protocol).
pub const PAGERANK: &str = r#"
    Vertex (id, active, out_nbrs, out_degree,
            rank: long, sum: Accm<long, SUM>)
    Initialize (u): {
        u.rank = 1000;
        u.active = true;
    }
    Traverse (u): {
        Let val = u.rank / u.out_degree;
        For v in u.out_nbrs {
            v.sum.Accumulate(val);
        }
    }
    Update (u): {
        Let val = 150 + (850 * u.sum) / 1000;
        If (Abs(val - u.rank) > 0) {
            u.rank = val;
            u.active = true;
        }
    }
"#;

/// Label Propagation (the matrix-vector formulation of Zhu & Ghahramani):
/// each vertex keeps 10% of its seed mass and absorbs 90% of its
/// neighbors' normalized mass. Undirected; integer-scaled by 1000.
pub const LABEL_PROP: &str = r#"
    Vertex (id, active, nbrs, degree,
            label: long, sum: Accm<long, SUM>)
    Initialize (u): {
        u.label = (u.id % 97) * 10;
        u.active = true;
    }
    Traverse (u): {
        Let val = u.label / u.degree;
        For v in u.nbrs {
            v.sum.Accumulate(val);
        }
    }
    Update (u): {
        Let val = (900 * u.sum) / 1000 + ((u.id % 97) * 10 * 100) / 1000;
        If (Abs(val - u.label) > 0) {
            u.label = val;
            u.active = true;
        }
    }
"#;

/// Weakly Connected Components by minimum-label propagation. Undirected.
pub const WCC: &str = r#"
    Vertex (id, active, nbrs, comp: long, m: Accm<long, MIN>)
    Initialize (u): {
        u.comp = u.id;
        u.active = true;
    }
    Traverse (u): {
        For v in u.nbrs {
            v.m.Accumulate(u.comp);
        }
    }
    Update (u): {
        If (u.m < u.comp) {
            u.comp = u.m;
            u.active = true;
        }
    }
"#;

/// The "infinity" distance used by [`bfs`].
pub const BFS_INF: i64 = 1_000_000_000;

/// Breadth-First Search from `root`. Undirected; distances via a Min
/// accumulator over neighbor distance + 1.
pub fn bfs(root: u64) -> String {
    format!(
        r#"
    Vertex (id, active, nbrs, dist: long, m: Accm<long, MIN>)
    Initialize (u): {{
        If (u.id == {root}) {{
            u.dist = 0;
            u.active = true;
        }} Else {{
            u.dist = {BFS_INF};
        }}
    }}
    Traverse (u): {{
        For v in u.nbrs {{
            v.m.Accumulate(u.dist + 1);
        }}
    }}
    Update (u): {{
        If (u.m < u.dist) {{
            u.dist = u.m;
            u.active = true;
        }}
    }}
"#
    )
}

/// Triangle Counting (Figure 5 of the paper). Undirected; the ordering
/// constraints count each triangle exactly once into the global `cnts`.
pub const TRIANGLE_COUNT: &str = r#"
    Vertex (id, active, nbrs)
    GlobalVariable (cnts: Accm<long, SUM>)
    Initialize (u1): {
        u1.active = true;
    }
    Traverse (u1): {
        For u2 in u1.nbrs Where (u1 < u2) {
            For u3 in u2.nbrs Where (u2 < u3) {
                For u4 in u3.nbrs Where (u4 == u1) {
                    cnts.Accumulate(1);
                }
            }
        }
    }
    Update (u1): { }
"#;

/// Local Clustering Coefficient, scaled by 1000:
/// `lcc = 1000 · 2·tri(v) / (deg(v)·(deg(v)−1))`. Undirected; the
/// branching walk enumerates unordered neighbor pairs of u1 and closes
/// them through u2's adjacency (a multi-way intersection).
pub const LCC: &str = r#"
    Vertex (id, active, nbrs, degree, tri: Accm<long, SUM>, lcc: long)
    Initialize (u1): {
        u1.active = true;
    }
    Traverse (u1): {
        For u2 in u1.nbrs {
            For u3 in u1.nbrs Where (u2 < u3) {
                For u4 in u2.nbrs Where (u4 == u3) {
                    u1.tri.Accumulate(1);
                }
            }
        }
    }
    Update (u1): {
        If (u1.degree > 1) {
            u1.lcc = (2000 * u1.tri) / (u1.degree * (u1.degree - 1));
        }
    }
"#;

/// Two-hop reach: each vertex counts the walks of length two leaving it
/// (a friend-of-friend exposure score), excluding walks that bounce
/// straight back. Not part of the paper's evaluation set — included as a
/// seventh program demonstrating NGA beyond the paper's six, with the same
/// automatic incrementalization.
pub const REACH2: &str = r#"
    Vertex (id, active, nbrs, r: Accm<long, SUM>, reach: long)
    Initialize (u): {
        u.active = true;
    }
    Traverse (u): {
        For v in u.nbrs {
            For w in v.nbrs Where (w != u) {
                u.r.Accumulate(1);
            }
        }
    }
    Update (u): {
        u.reach = u.r;
    }
"#;

/// Whether an algorithm's graph is undirected in the paper's evaluation.
pub fn is_undirected(name: &str) -> bool {
    !matches!(name, "pr")
}

/// All algorithm names in the paper's group order.
pub const ALL: &[&str] = &["pr", "lp", "wcc", "bfs", "tc", "lcc"];

/// Fetch an algorithm's source by short name (`bfs` uses root 0; use
/// [`bfs`] directly for other roots).
pub fn source(name: &str) -> Option<String> {
    Some(match name {
        "pr" => PAGERANK.to_string(),
        "lp" => LABEL_PROP.to_string(),
        "wcc" => WCC.to_string(),
        "bfs" => bfs(0),
        "tc" => TRIANGLE_COUNT.to_string(),
        "lcc" => LCC.to_string(),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_programs_compile() {
        for name in ALL {
            let src = source(name).unwrap();
            let compiled = itg_compiler::compile_source(&src)
                .unwrap_or_else(|e| panic!("{name} failed to compile: {e}"));
            assert!(
                compiled.incremental_safe,
                "{name} must be incrementally safe"
            );
        }
    }

    #[test]
    fn group3_walks_have_expected_shape() {
        let tc = itg_compiler::compile_source(TRIANGLE_COUNT).unwrap();
        assert_eq!(tc.traverse.queries[0].hops.len(), 3);
        assert_eq!(tc.traverse.queries[0].closes_to, Some(0));
        assert_eq!(tc.delta_traverse.len(), 4);

        let lcc = itg_compiler::compile_source(LCC).unwrap();
        assert_eq!(lcc.traverse.queries[0].hops.len(), 3);
        assert_eq!(lcc.traverse.queries[0].closes_to, Some(2));
        assert!(lcc.analysis.update_reads_degree);
    }

    #[test]
    fn group1_reads_degree_in_traverse() {
        let pr = itg_compiler::compile_source(PAGERANK).unwrap();
        assert!(pr.analysis.traverse_reads_degree);
        assert_eq!(pr.traverse.queries[0].hops.len(), 1);
    }

    #[test]
    fn bfs_parameterized_by_root() {
        let src = bfs(42);
        assert!(src.contains("u.id == 42"));
        itg_compiler::compile_source(&src).unwrap();
    }
}
