//! Native reference implementations of the six algorithms, written against
//! a plain adjacency-list graph with the *exact* BSP semantics of the
//! `L_NGA` execution model (Figure 4):
//!
//! 1. each superstep, active vertices traverse and accumulate;
//! 2. after the barrier, every vertex is deactivated and Update runs only
//!    for vertices whose accumulators were touched;
//! 3. termination when no vertex is active (or the superstep cap hits).
//!
//! These run completely independently of the engine (no windows, no
//! deltas, no partitions) and anchor the equivalence tests: the engine's
//! one-shot results, and its incremental results after any mutation
//! sequence, must match these bit-for-bit (the programs use integer
//! arithmetic precisely to make that possible).

use itg_gsa::VertexId;

/// A plain in-memory graph for the reference implementations.
#[derive(Debug, Clone, Default)]
pub struct SimpleGraph {
    pub n: usize,
    /// Out-adjacency (for undirected graphs, mirrored).
    pub adj: Vec<Vec<VertexId>>,
}

impl SimpleGraph {
    /// Build from directed edges.
    pub fn directed(n: usize, edges: &[(VertexId, VertexId)]) -> SimpleGraph {
        let mut adj = vec![Vec::new(); n];
        for &(s, d) in edges {
            adj[s as usize].push(d);
        }
        for a in &mut adj {
            a.sort_unstable();
            a.dedup();
        }
        SimpleGraph { n, adj }
    }

    /// Build from undirected edges (each pair listed once or twice).
    pub fn undirected(n: usize, edges: &[(VertexId, VertexId)]) -> SimpleGraph {
        let mut all = Vec::with_capacity(edges.len() * 2);
        for &(s, d) in edges {
            if s != d {
                all.push((s, d));
                all.push((d, s));
            }
        }
        SimpleGraph::directed(n, &all)
    }

    pub fn degree(&self, v: VertexId) -> usize {
        self.adj[v as usize].len()
    }

    pub fn has_edge(&self, s: VertexId, d: VertexId) -> bool {
        self.adj[s as usize].binary_search(&d).is_ok()
    }
}

/// Integer PageRank (scale 1000), matching [`crate::programs::PAGERANK`].
/// `graph.adj` is the *out*-adjacency. Runs at most `max_supersteps`.
pub fn pagerank(graph: &SimpleGraph, max_supersteps: usize) -> Vec<i64> {
    let n = graph.n;
    let mut rank = vec![1000i64; n];
    let mut active = vec![true; n];
    for _ in 0..max_supersteps {
        if !active.iter().any(|&a| a) {
            break;
        }
        let mut sum = vec![0i64; n];
        let mut touched = vec![false; n];
        for v in 0..n {
            if active[v] && graph.degree(v as u64) > 0 {
                let val = rank[v] / graph.degree(v as u64) as i64;
                for &d in &graph.adj[v] {
                    sum[d as usize] += val;
                    touched[d as usize] = true;
                }
            }
        }
        active.iter_mut().for_each(|a| *a = false);
        for v in 0..n {
            if touched[v] {
                let val = 150 + (850 * sum[v]) / 1000;
                if (val - rank[v]).abs() > 0 {
                    rank[v] = val;
                    active[v] = true;
                }
            }
        }
    }
    rank
}

/// Integer Label Propagation matching [`crate::programs::LABEL_PROP`]
/// (undirected graph).
pub fn label_prop(graph: &SimpleGraph, max_supersteps: usize) -> Vec<i64> {
    let n = graph.n;
    let seed = |v: usize| (v as i64 % 97) * 10;
    let mut label: Vec<i64> = (0..n).map(seed).collect();
    let mut active = vec![true; n];
    for _ in 0..max_supersteps {
        if !active.iter().any(|&a| a) {
            break;
        }
        let mut sum = vec![0i64; n];
        let mut touched = vec![false; n];
        for v in 0..n {
            if active[v] && graph.degree(v as u64) > 0 {
                let val = label[v] / graph.degree(v as u64) as i64;
                for &d in &graph.adj[v] {
                    sum[d as usize] += val;
                    touched[d as usize] = true;
                }
            }
        }
        active.iter_mut().for_each(|a| *a = false);
        for v in 0..n {
            if touched[v] {
                let val = (900 * sum[v]) / 1000 + (seed(v) * 100) / 1000;
                if (val - label[v]).abs() > 0 {
                    label[v] = val;
                    active[v] = true;
                }
            }
        }
    }
    label
}

/// WCC by min-label propagation, matching [`crate::programs::WCC`].
pub fn wcc(graph: &SimpleGraph) -> Vec<i64> {
    let n = graph.n;
    let mut comp: Vec<i64> = (0..n as i64).collect();
    let mut active = vec![true; n];
    while active.iter().any(|&a| a) {
        let mut m = vec![i64::MAX; n];
        let mut touched = vec![false; n];
        for v in 0..n {
            if active[v] {
                for &d in &graph.adj[v] {
                    m[d as usize] = m[d as usize].min(comp[v]);
                    touched[d as usize] = true;
                }
            }
        }
        active.iter_mut().for_each(|a| *a = false);
        for v in 0..n {
            if touched[v] && m[v] < comp[v] {
                comp[v] = m[v];
                active[v] = true;
            }
        }
    }
    comp
}

/// BFS distances from `root`, matching [`crate::programs::bfs`]
/// (unreached = [`crate::programs::BFS_INF`]).
pub fn bfs(graph: &SimpleGraph, root: VertexId) -> Vec<i64> {
    let n = graph.n;
    let inf = crate::programs::BFS_INF;
    let mut dist = vec![inf; n];
    let mut active = vec![false; n];
    if (root as usize) < n {
        dist[root as usize] = 0;
        active[root as usize] = true;
    }
    while active.iter().any(|&a| a) {
        let mut m = vec![i64::MAX; n];
        let mut touched = vec![false; n];
        for v in 0..n {
            if active[v] {
                for &d in &graph.adj[v] {
                    m[d as usize] = m[d as usize].min(dist[v] + 1);
                    touched[d as usize] = true;
                }
            }
        }
        active.iter_mut().for_each(|a| *a = false);
        for v in 0..n {
            if touched[v] && m[v] < dist[v] {
                dist[v] = m[v];
                active[v] = true;
            }
        }
    }
    dist
}

/// Total triangle count of an undirected graph (each counted once).
pub fn triangle_count(graph: &SimpleGraph) -> i64 {
    let mut count = 0i64;
    for u in 0..graph.n as u64 {
        for &v in &graph.adj[u as usize] {
            if v <= u {
                continue;
            }
            for &w in &graph.adj[v as usize] {
                if w > v && graph.has_edge(w, u) {
                    count += 1;
                }
            }
        }
    }
    count
}

/// Per-vertex triangle counts of an undirected graph.
pub fn triangles_per_vertex(graph: &SimpleGraph) -> Vec<i64> {
    let mut tri = vec![0i64; graph.n];
    for u in 0..graph.n as u64 {
        let adj = &graph.adj[u as usize];
        for (i, &v) in adj.iter().enumerate() {
            for &w in &adj[i + 1..] {
                if graph.has_edge(v, w) {
                    tri[u as usize] += 1;
                }
            }
        }
    }
    tri
}

/// Integer LCC (scale 1000) matching [`crate::programs::LCC`]: vertices
/// with no triangle contributions keep 0 (Update only runs for touched
/// vertices under the BSP semantics).
pub fn lcc(graph: &SimpleGraph) -> Vec<i64> {
    let tri = triangles_per_vertex(graph);
    (0..graph.n)
        .map(|v| {
            let d = graph.degree(v as u64) as i64;
            if tri[v] > 0 && d > 1 {
                (2000 * tri[v]) / (d * (d - 1))
            } else {
                0
            }
        })
        .collect()
}

/// Two-hop reach matching [`crate::programs::REACH2`]: walks u→v→w with
/// w ≠ u. Vertices with no such walks keep 0 (untouched under BSP
/// semantics).
pub fn reach2(graph: &SimpleGraph) -> Vec<i64> {
    (0..graph.n)
        .map(|u| {
            graph.adj[u]
                .iter()
                .map(|&v| {
                    graph.adj[v as usize]
                        .iter()
                        .filter(|&&w| w != u as VertexId)
                        .count() as i64
                })
                .sum()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's G_0 (Figure 6).
    fn g0() -> SimpleGraph {
        SimpleGraph::undirected(
            8,
            &[
                (0, 1),
                (0, 5),
                (1, 5),
                (2, 3),
                (2, 5),
                (3, 4),
                (4, 5),
                (6, 7),
            ],
        )
    }

    #[test]
    fn triangle_counts_on_paper_graph() {
        let g = g0();
        assert_eq!(triangle_count(&g), 1);
        let tri = triangles_per_vertex(&g);
        assert_eq!(tri[0], 1);
        assert_eq!(tri[1], 1);
        assert_eq!(tri[5], 1);
        assert_eq!(tri[2], 0);
        // After inserting (3,5) — the paper's ΔG_1 — two more triangles.
        let g1 = SimpleGraph::undirected(
            8,
            &[
                (0, 1),
                (0, 5),
                (1, 5),
                (2, 3),
                (2, 5),
                (3, 4),
                (3, 5),
                (4, 5),
                (6, 7),
            ],
        );
        assert_eq!(triangle_count(&g1), 3);
    }

    #[test]
    fn wcc_finds_two_components() {
        let comp = wcc(&g0());
        assert!(comp[..6].iter().all(|&c| c == 0));
        assert_eq!(comp[6], 6);
        assert_eq!(comp[7], 6);
    }

    #[test]
    fn bfs_distances() {
        let dist = bfs(&g0(), 0);
        assert_eq!(dist[0], 0);
        assert_eq!(dist[1], 1);
        assert_eq!(dist[5], 1);
        assert_eq!(dist[2], 2);
        assert_eq!(dist[3], 3);
        assert_eq!(dist[6], crate::programs::BFS_INF);
    }

    #[test]
    fn pagerank_converges_and_is_deterministic() {
        let g = SimpleGraph::directed(4, &[(0, 1), (1, 2), (2, 0), (3, 0)]);
        let r1 = pagerank(&g, 10);
        let r2 = pagerank(&g, 10);
        assert_eq!(r1, r2);
        // The 3-cycle members hold more rank than the dangling feeder.
        assert!(r1[0] > r1[3]);
    }

    #[test]
    fn lcc_of_a_clique_is_1000() {
        let g = SimpleGraph::undirected(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        assert_eq!(lcc(&g), vec![1000; 4]);
        // A star has no triangles: all zeros.
        let star = SimpleGraph::undirected(4, &[(0, 1), (0, 2), (0, 3)]);
        assert_eq!(lcc(&star), vec![0; 4]);
    }

    #[test]
    fn label_prop_deterministic() {
        let g = g0();
        assert_eq!(label_prop(&g, 10), label_prop(&g, 10));
    }
}
