//! # iTurboGraph — scaling and automating incremental graph analytics
//!
//! A from-scratch Rust implementation of the system described in
//! *"iTurboGraph: Scaling and Automating Incremental Graph Analytics"*
//! (Ko, Lee, Hong, Lee, Seo, Seo, Han — SIGMOD 2021): a domain-specific
//! language (`L_NGA`) for neighbor-centric graph analytics, a compiler
//! that lowers it to Graph Streaming Algebra and *automatically
//! incrementalizes* the query, and a runtime engine that executes both the
//! one-shot and incremental plans over a delta-based dynamic graph store.
//!
//! ## Quick start
//!
//! ```
//! use iturbograph::prelude::*;
//!
//! // Triangle counting, written once in L_NGA — the incremental plan is
//! // derived automatically.
//! let graph = GraphInput::undirected(vec![(0, 1), (0, 2), (1, 2), (2, 3)]);
//! let mut session = SessionBuilder::new()
//!     .from_source(iturbograph::algorithms::TRIANGLE_COUNT, &graph)
//!     .unwrap();
//!
//! session.run_oneshot();
//! assert_eq!(session.global_value("cnts", None).unwrap(), Value::Long(1));
//!
//! // Stream in a mutation batch and update the result incrementally.
//! session.apply_mutations(&MutationBatch::new(vec![EdgeMutation::insert(1, 3)]));
//! session.run_incremental();
//! assert_eq!(session.global_value("cnts", None).unwrap(), Value::Long(2));
//! ```
//!
//! ## Standing queries
//!
//! [`QueryRegistry`](prelude::QueryRegistry) (the engine behind
//! `itg serve`) maintains many registered queries against one mutation
//! stream, backing structurally identical queries with a single shared
//! session so their Δ-walks are enumerated once per batch:
//!
//! ```
//! use iturbograph::prelude::*;
//!
//! let graph = GraphInput::undirected(vec![(0, 1), (0, 2), (1, 2), (2, 3)]);
//! let mut registry =
//!     QueryRegistry::new(&graph, EngineConfig::default(), ServeLimits::default());
//! let a = registry.register("tc-a", iturbograph::algorithms::TRIANGLE_COUNT).unwrap();
//! let b = registry.register("tc-b", iturbograph::algorithms::TRIANGLE_COUNT).unwrap();
//! assert_eq!(registry.num_groups(), 1); // structural twins share one session
//!
//! let batch = MutationBatch::new(vec![EdgeMutation::insert(1, 3)]);
//! let stats = registry.commit(&batch).unwrap();
//! assert_eq!(stats.share_hits, 1); // enumerated once, fanned out to both
//! assert_eq!(registry.global_value(a, "cnts").unwrap(), Value::Long(2));
//! assert_eq!(registry.global_value(b, "cnts").unwrap(), Value::Long(2));
//! ```
//!
//! Sharing is keyed on [`program_hash`](prelude::program_hash), a
//! name-insensitive structural hash of the compiled plan, and results are
//! byte-identical to running each query in its own isolated session
//! (DESIGN.md §11).
//!
//! ## Crate map
//!
//! | Re-export | Crate | Paper section |
//! |---|---|---|
//! | [`lnga`] | `itg-lnga` | §3 — the `L_NGA` language front end |
//! | [`gsa`] | `itg-gsa` | §4 — Graph Streaming Algebra, Table 4 rules |
//! | [`compiler`] | `itg-compiler` | §4.4/§5.1 — lowering + incrementalization |
//! | [`store`] | `itg-store` | §5.5 — the delta-based dynamic graph store |
//! | [`engine`] | `itg-engine` | §5.2–5.4 — the BSP runtime and Δ-walks |
//! | [`algorithms`] | `itg-algorithms` | §6.1 — PR, LP, WCC, BFS, TC, LCC |
//! | [`graphgen`] | `itg-graphgen` | §6.1 — RMAT, upscaling, workloads |

pub use itg_compiler as compiler;
pub use itg_engine as engine;
pub use itg_graphgen as graphgen;
pub use itg_gsa as gsa;
pub use itg_lnga as lnga;
pub use itg_obs as obs;
pub use itg_store as store;

/// The paper's six evaluation algorithms as ready-to-compile `L_NGA`
/// sources, plus native reference implementations.
pub mod algorithms {
    pub use itg_algorithms::native;
    pub use itg_algorithms::programs::*;
    pub use itg_algorithms::SimpleGraph;
}

/// The common imports for applications.
pub mod prelude {
    pub use itg_compiler::{compile_source, program_hash, walk_shape_hash, CompiledProgram};
    pub use itg_engine::{
        CommitStats, DurabilityKind, EngineConfig, GraphInput, OptFlags, QueryId, QueryRegistry,
        RegistryError, RunKind, RunMetrics, ServeLimits, Session, SessionBuilder, SnapshotId,
        TransportKind,
    };
    pub use itg_gsa::{Value, VertexId};
    pub use itg_store::{BatchReceipt, EdgeMutation, MaintenancePolicy, MutationBatch};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn facade_quickstart_compiles_and_runs() {
        let graph = GraphInput::undirected(vec![(0, 1), (0, 2), (1, 2)]);
        let mut s = SessionBuilder::from_config(EngineConfig::default())
            .from_source(crate::algorithms::TRIANGLE_COUNT, &graph)
            .unwrap();
        s.run_oneshot();
        assert_eq!(s.global_value("cnts", None).unwrap(), Value::Long(1));
    }
}
