//! `itg` — the iTurboGraph command-line runner.
//!
//! ```text
//! itg check   <program.lnga>                 type-check a program
//! itg explain <program.lnga>                 print P_Q and P_ΔQ
//! itg run     <program.lnga> <edges.txt>     one-shot run, print results
//!     [--undirected] [--machines N] [--max-supersteps N]
//!     [--mutations <muts.txt>]               then incremental batches
//! itg serve   <edges.txt>                    standing-query server
//!     [--undirected] [--machines N] [--max-supersteps N]
//!     [--script <cmds.txt>]                  command file (default: stdin)
//!     [--max-queries N] [--max-batch-edges N] [--batch-budget-ms N]
//! ```
//!
//! Edge files are whitespace-separated `src dst` pairs, one per line;
//! `#`-prefixed lines are comments. Mutation files use `+ src dst` /
//! `- src dst` lines, with blank lines separating batches.
//!
//! `serve` reads a line protocol (from `--script` or stdin) and drives a
//! [`QueryRegistry`]: structurally identical registered queries share one
//! backing session, so their Δ-plans run once per committed batch:
//!
//! ```text
//! REGISTER <name> <program.lnga>    register a standing query
//! UNREGISTER <name>                 remove it
//! BATCH                             start collecting mutations …
//! + <src> <dst>                     …an edge insert
//! - <src> <dst>                     …an edge delete
//! COMMIT                            apply the batch, refresh all queries
//! QUERY <name>                      print the query's current results
//! STATS                             registry-wide sharing counters
//! QUIT                              stop (EOF works too)
//! ```
//!
//! A long-lived server must survive operator typos: malformed or
//! out-of-order commands (a bad `+ src dst`, `COMMIT` without `BATCH`, an
//! unknown query name) print an `error: line N: …` line and the session
//! keeps going — only I/O failures reading the script itself are fatal.
//! Registry-level rejections ([`ServeLimits`]) likewise print `rejected:`
//! and leave the registry state untouched.

use iturbograph::prelude::*;
use std::fs;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("itg: {msg}");
            ExitCode::from(1)
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let cmd = args.first().map(|s| s.as_str()).unwrap_or("help");
    match cmd {
        "check" => {
            let src = read(arg(args, 1, "program path")?)?;
            let program = compile_source(&src).map_err(|e| e.to_string())?;
            println!(
                "ok: {} attrs, {} accumulators, {} globals, {} walk queries, max {} hops",
                program.symbols.attrs.len(),
                program.symbols.accms.len(),
                program.symbols.globals.len(),
                program.traverse.queries.len(),
                program.max_hops,
            );
            if !program.incremental_safe {
                println!("note: program is NOT incrementally safe (deep attribute reads)");
            }
            Ok(())
        }
        "explain" => {
            let src = read(arg(args, 1, "program path")?)?;
            let program = compile_source(&src).map_err(|e| e.to_string())?;
            println!("=== one-shot plan P_Q ===\n{}", program.algebra.explain());
            println!("=== incremental plan P_ΔQ ===\n{}", program.algebra_delta.explain());
            println!("Δ-walk sub-queries:");
            for sq in &program.delta_traverse {
                println!(
                    "  query {}: delta at stream {} ({}), pruning path {:?}",
                    sq.query,
                    sq.delta_stream,
                    if sq.delta_stream == 0 {
                        "Δvs".to_string()
                    } else {
                        format!("Δes{}", sq.delta_stream)
                    },
                    sq.pruning_path,
                );
            }
            Ok(())
        }
        "run" => {
            let src = read(arg(args, 1, "program path")?)?;
            let edges = parse_edges(&read(arg(args, 2, "edge file")?)?)?;
            let undirected = flag(args, "--undirected");
            let machines: usize = opt(args, "--machines")?.unwrap_or(1);
            let max_ss: usize = opt(args, "--max-supersteps")?.unwrap_or(usize::MAX);

            let input = if undirected {
                GraphInput::undirected(edges)
            } else {
                GraphInput::directed(edges)
            };
            // Seed from the environment so the consolidated knobs
            // (`ITG_WAL_DIR`, `ITG_PROFILE`, …) work on the CLI surface.
            let cfg = EngineConfig {
                machines,
                parallel: machines > 1,
                max_supersteps: max_ss,
                ..EngineConfig::from_env()
            };
            let mut session =
                SessionBuilder::from_config(cfg).from_source(&src, &input).map_err(|e| e.to_string())?;
            let one = session.run_oneshot();
            println!("one-shot: {}", one.summary());
            print_results(&session);

            if let Some(path) = opt_str(args, "--mutations") {
                let batches = parse_mutations(&read(&path)?)?;
                for (i, batch) in batches.into_iter().enumerate() {
                    session.apply_mutations(&batch);
                    let inc = session.run_incremental();
                    println!("\nbatch {}: {}", i + 1, inc.summary());
                    print_results(&session);
                }
            }
            Ok(())
        }
        "serve" => serve(args),
        _ => {
            eprintln!(
                "usage: itg <check|explain|run|serve> <program.lnga|edges.txt> [edges.txt] \
                 [--undirected] [--machines N] [--max-supersteps N] [--mutations muts.txt] \
                 [--script cmds.txt] [--max-queries N] [--max-batch-edges N] \
                 [--batch-budget-ms N]"
            );
            Err("unknown command".into())
        }
    }
}

/// The `itg serve` loop: build a [`QueryRegistry`] over the edge file and
/// drive it from the line protocol (see the module docs).
fn serve(args: &[String]) -> Result<(), String> {
    let edges = parse_edges(&read(arg(args, 1, "edge file")?)?)?;
    let undirected = flag(args, "--undirected");
    let machines: usize = opt(args, "--machines")?.unwrap_or(1);
    let max_ss: usize = opt(args, "--max-supersteps")?.unwrap_or(usize::MAX);

    let input = if undirected {
        GraphInput::undirected(edges)
    } else {
        GraphInput::directed(edges)
    };
    let cfg = EngineConfig {
        machines,
        parallel: machines > 1,
        max_supersteps: max_ss,
        ..EngineConfig::from_env()
    };
    // Flags override the ITG_MAX_QUERIES / ITG_MAX_BATCH_EDGES /
    // ITG_BATCH_BUDGET_MS environment knobs, which override the defaults.
    let mut limits = ServeLimits::from_env();
    if let Some(n) = opt(args, "--max-queries")? {
        limits.max_queries = n;
    }
    if let Some(n) = opt(args, "--max-batch-edges")? {
        limits.max_batch_edges = n;
    }
    if let Some(ms) = opt(args, "--batch-budget-ms")? {
        limits.batch_budget_ms = Some(ms);
    }
    let mut registry = QueryRegistry::new(&input, cfg, limits);

    let script: Box<dyn std::io::BufRead> = match opt_str(args, "--script") {
        Some(path) => Box::new(std::io::BufReader::new(
            fs::File::open(&path).map_err(|e| format!("{path}: {e}"))?,
        )),
        None => Box::new(std::io::BufReader::new(std::io::stdin())),
    };

    let mut names: std::collections::BTreeMap<String, QueryId> = std::collections::BTreeMap::new();
    let mut pending: Option<Vec<EdgeMutation>> = None;
    for (ln, line) in std::io::BufRead::lines(script).enumerate() {
        let line = line.map_err(|e| e.to_string())?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        // Protocol errors are not fatal: a standing-query server must
        // outlive operator typos, so every malformed or out-of-order
        // command prints an `error:` line and the loop keeps reading.
        let at = |msg: String| format!("error: line {}: {msg}", ln + 1);
        let mut it = line.split_whitespace();
        let cmd = it.next().unwrap_or("");
        // Inside a BATCH, only mutation lines and COMMIT are meaningful.
        if let Some(muts) = pending.as_mut() {
            match cmd {
                "+" | "-" => {
                    let s = it.next().and_then(|t| t.parse::<u64>().ok());
                    let d = it.next().and_then(|t| t.parse::<u64>().ok());
                    match (s, d) {
                        (Some(s), Some(d)) => muts.push(if cmd == "+" {
                            EdgeMutation::insert(s, d)
                        } else {
                            EdgeMutation::delete(s, d)
                        }),
                        _ => println!(
                            "{}",
                            at("expected `+|- src dst`; line ignored, batch still open".into())
                        ),
                    }
                }
                "COMMIT" => {
                    let batch = MutationBatch::new(pending.take().unwrap());
                    match registry.commit(&batch) {
                        Ok(stats) => println!(
                            "committed batch {}: {} plan run(s) served {} quer{}, \
                             {} share hit(s), {} ms{}",
                            stats.epoch,
                            stats.groups_run,
                            stats.queries_served,
                            if stats.queries_served == 1 { "y" } else { "ies" },
                            stats.share_hits,
                            stats.elapsed_ms,
                            if stats.over_budget { " (OVER BUDGET)" } else { "" },
                        ),
                        Err(e) => println!("rejected: {e}"),
                    }
                }
                other => println!(
                    "{}",
                    at(format!(
                        "expected mutation or COMMIT, got `{other}`; batch still open"
                    ))
                ),
            }
            continue;
        }
        match cmd {
            "REGISTER" => {
                let (Some(name), Some(path)) = (it.next(), it.next()) else {
                    println!("{}", at("REGISTER <name> <path>".into()));
                    continue;
                };
                let src = match read(path) {
                    Ok(src) => src,
                    Err(e) => {
                        println!("{}", at(e));
                        continue;
                    }
                };
                match registry.register(name, &src) {
                    Ok(id) => {
                        names.insert(name.to_string(), id);
                        println!(
                            "registered {name} as {id} ({} quer{}, {} shared group(s))",
                            registry.num_queries(),
                            if registry.num_queries() == 1 { "y" } else { "ies" },
                            registry.num_groups(),
                        );
                    }
                    Err(e) => println!("rejected: {e}"),
                }
            }
            "UNREGISTER" => {
                let Some(name) = it.next() else {
                    println!("{}", at("UNREGISTER <name>".into()));
                    continue;
                };
                let Some(&id) = names.get(name) else {
                    println!("{}", at(format!("unknown query `{name}`")));
                    continue;
                };
                match registry.unregister(id) {
                    Ok(()) => {
                        names.remove(name);
                        println!("unregistered {name}");
                    }
                    Err(e) => println!("{}", at(e.to_string())),
                }
            }
            "BATCH" => pending = Some(Vec::new()),
            "COMMIT" => println!(
                "{}",
                at("COMMIT without an open BATCH; start one with `BATCH`".into())
            ),
            "QUERY" => {
                let Some(name) = it.next() else {
                    println!("{}", at("QUERY <name>".into()));
                    continue;
                };
                let Some(&id) = names.get(name) else {
                    println!("{}", at(format!("unknown query `{name}`")));
                    continue;
                };
                print_registry_results(&registry, id);
            }
            "STATS" => println!(
                "{} quer{}, {} shared group(s), {} unique walk shape(s), \
                 {} share hit(s), epoch {}",
                registry.num_queries(),
                if registry.num_queries() == 1 { "y" } else { "ies" },
                registry.num_groups(),
                registry.unique_subplans(),
                registry.share_hits(),
                registry.epoch(),
            ),
            "QUIT" => break,
            other => println!("{}", at(format!("unknown command `{other}`"))),
        }
    }
    Ok(())
}

/// `QUERY <name>` output: globals, then the first few vertex attributes —
/// resolved through the query's *own* symbol names (its share-group
/// leader may use different ones).
fn print_registry_results(registry: &QueryRegistry, id: QueryId) {
    let program = registry.query_program(id).expect("registered");
    for g in &program.symbols.globals {
        if let Ok(v) = registry.global_value(id, &g.name) {
            println!("  global {} = {}", g.name, v);
        }
    }
    let attrs: Vec<String> = program.symbols.attrs[1..]
        .iter()
        .map(|a| a.name.clone())
        .collect();
    if attrs.is_empty() {
        return;
    }
    let n = registry.current_input().num_vertices.min(10);
    for v in 0..n as u64 {
        let vals: Vec<String> = attrs
            .iter()
            .map(|a| {
                registry
                    .attr_value(id, v, a)
                    .map(|x| format!("{a}={x}"))
                    .unwrap_or_default()
            })
            .collect();
        println!("  v{v}: {}", vals.join("  "));
    }
}

fn arg<'a>(args: &'a [String], i: usize, what: &str) -> Result<&'a str, String> {
    args.get(i)
        .map(|s| s.as_str())
        .ok_or_else(|| format!("missing {what}"))
}

fn flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn opt_str(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn opt<T: std::str::FromStr>(args: &[String], name: &str) -> Result<Option<T>, String> {
    match opt_str(args, name) {
        None => Ok(None),
        Some(v) => v
            .parse()
            .map(Some)
            .map_err(|_| format!("invalid value for {name}: {v}")),
    }
}

fn read(path: &str) -> Result<String, String> {
    fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))
}

fn parse_edges(text: &str) -> Result<Vec<(u64, u64)>, String> {
    let mut out = Vec::new();
    for (ln, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let s: u64 = it
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| format!("line {}: expected `src dst`", ln + 1))?;
        let d: u64 = it
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| format!("line {}: expected `src dst`", ln + 1))?;
        out.push((s, d));
    }
    Ok(out)
}

fn parse_mutations(text: &str) -> Result<Vec<MutationBatch>, String> {
    let mut batches = Vec::new();
    let mut current: Vec<EdgeMutation> = Vec::new();
    for (ln, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.starts_with('#') {
            continue;
        }
        if line.is_empty() {
            if !current.is_empty() {
                batches.push(MutationBatch::new(std::mem::take(&mut current)));
            }
            continue;
        }
        let mut it = line.split_whitespace();
        let sign = it.next().unwrap_or("");
        let s: u64 = it
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| format!("line {}: expected `+|- src dst`", ln + 1))?;
        let d: u64 = it
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| format!("line {}: expected `+|- src dst`", ln + 1))?;
        match sign {
            "+" => current.push(EdgeMutation::insert(s, d)),
            "-" => current.push(EdgeMutation::delete(s, d)),
            other => return Err(format!("line {}: bad sign `{other}`", ln + 1)),
        }
    }
    if !current.is_empty() {
        batches.push(MutationBatch::new(current));
    }
    Ok(batches)
}

fn print_results(session: &Session) {
    // Globals.
    for g in &session.program.symbols.globals {
        if let Ok(v) = session.global_value(&g.name, None) {
            println!("  global {} = {}", g.name, v);
        }
    }
    // First few vertices' non-accm attributes (skip `active`).
    let n = session.graph.num_vertices().min(10);
    let attrs: Vec<String> = session.program.symbols.attrs[1..]
        .iter()
        .map(|a| a.name.clone())
        .collect();
    if attrs.is_empty() {
        return;
    }
    for v in 0..n as u64 {
        let vals: Vec<String> = attrs
            .iter()
            .map(|a| {
                session
                    .attr_value(v, a)
                    .map(|x| format!("{a}={x}"))
                    .unwrap_or_default()
            })
            .collect();
        println!("  v{v}: {}", vals.join("  "));
    }
    if session.graph.num_vertices() > 10 {
        println!("  … ({} vertices total)", session.graph.num_vertices());
    }
}
