//! `itg` — the iTurboGraph command-line runner.
//!
//! ```text
//! itg check   <program.lnga>                 type-check a program
//! itg explain <program.lnga>                 print P_Q and P_ΔQ
//! itg run     <program.lnga> <edges.txt>     one-shot run, print results
//!     [--undirected] [--machines N] [--max-supersteps N]
//!     [--mutations <muts.txt>]               then incremental batches
//! ```
//!
//! Edge files are whitespace-separated `src dst` pairs, one per line;
//! `#`-prefixed lines are comments. Mutation files use `+ src dst` /
//! `- src dst` lines, with blank lines separating batches.

use iturbograph::prelude::*;
use std::fs;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("itg: {msg}");
            ExitCode::from(1)
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let cmd = args.first().map(|s| s.as_str()).unwrap_or("help");
    match cmd {
        "check" => {
            let src = read(arg(args, 1, "program path")?)?;
            let program = compile_source(&src).map_err(|e| e.to_string())?;
            println!(
                "ok: {} attrs, {} accumulators, {} globals, {} walk queries, max {} hops",
                program.symbols.attrs.len(),
                program.symbols.accms.len(),
                program.symbols.globals.len(),
                program.traverse.queries.len(),
                program.max_hops,
            );
            if !program.incremental_safe {
                println!("note: program is NOT incrementally safe (deep attribute reads)");
            }
            Ok(())
        }
        "explain" => {
            let src = read(arg(args, 1, "program path")?)?;
            let program = compile_source(&src).map_err(|e| e.to_string())?;
            println!("=== one-shot plan P_Q ===\n{}", program.algebra.explain());
            println!("=== incremental plan P_ΔQ ===\n{}", program.algebra_delta.explain());
            println!("Δ-walk sub-queries:");
            for sq in &program.delta_traverse {
                println!(
                    "  query {}: delta at stream {} ({}), pruning path {:?}",
                    sq.query,
                    sq.delta_stream,
                    if sq.delta_stream == 0 {
                        "Δvs".to_string()
                    } else {
                        format!("Δes{}", sq.delta_stream)
                    },
                    sq.pruning_path,
                );
            }
            Ok(())
        }
        "run" => {
            let src = read(arg(args, 1, "program path")?)?;
            let edges = parse_edges(&read(arg(args, 2, "edge file")?)?)?;
            let undirected = flag(args, "--undirected");
            let machines: usize = opt(args, "--machines")?.unwrap_or(1);
            let max_ss: usize = opt(args, "--max-supersteps")?.unwrap_or(usize::MAX);

            let input = if undirected {
                GraphInput::undirected(edges)
            } else {
                GraphInput::directed(edges)
            };
            // Seed from the environment so the consolidated knobs
            // (`ITG_WAL_DIR`, `ITG_PROFILE`, …) work on the CLI surface.
            let cfg = EngineConfig {
                machines,
                parallel: machines > 1,
                max_supersteps: max_ss,
                ..EngineConfig::from_env()
            };
            let mut session =
                SessionBuilder::from_config(cfg).from_source(&src, &input).map_err(|e| e.to_string())?;
            let one = session.run_oneshot();
            println!("one-shot: {}", one.summary());
            print_results(&session);

            if let Some(path) = opt_str(args, "--mutations") {
                let batches = parse_mutations(&read(&path)?)?;
                for (i, batch) in batches.into_iter().enumerate() {
                    session.apply_mutations(&batch);
                    let inc = session.run_incremental();
                    println!("\nbatch {}: {}", i + 1, inc.summary());
                    print_results(&session);
                }
            }
            Ok(())
        }
        _ => {
            eprintln!(
                "usage: itg <check|explain|run> <program.lnga> [edges.txt] \
                 [--undirected] [--machines N] [--max-supersteps N] [--mutations muts.txt]"
            );
            Err("unknown command".into())
        }
    }
}

fn arg<'a>(args: &'a [String], i: usize, what: &str) -> Result<&'a str, String> {
    args.get(i)
        .map(|s| s.as_str())
        .ok_or_else(|| format!("missing {what}"))
}

fn flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn opt_str(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn opt<T: std::str::FromStr>(args: &[String], name: &str) -> Result<Option<T>, String> {
    match opt_str(args, name) {
        None => Ok(None),
        Some(v) => v
            .parse()
            .map(Some)
            .map_err(|_| format!("invalid value for {name}: {v}")),
    }
}

fn read(path: &str) -> Result<String, String> {
    fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))
}

fn parse_edges(text: &str) -> Result<Vec<(u64, u64)>, String> {
    let mut out = Vec::new();
    for (ln, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let s: u64 = it
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| format!("line {}: expected `src dst`", ln + 1))?;
        let d: u64 = it
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| format!("line {}: expected `src dst`", ln + 1))?;
        out.push((s, d));
    }
    Ok(out)
}

fn parse_mutations(text: &str) -> Result<Vec<MutationBatch>, String> {
    let mut batches = Vec::new();
    let mut current: Vec<EdgeMutation> = Vec::new();
    for (ln, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.starts_with('#') {
            continue;
        }
        if line.is_empty() {
            if !current.is_empty() {
                batches.push(MutationBatch::new(std::mem::take(&mut current)));
            }
            continue;
        }
        let mut it = line.split_whitespace();
        let sign = it.next().unwrap_or("");
        let s: u64 = it
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| format!("line {}: expected `+|- src dst`", ln + 1))?;
        let d: u64 = it
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| format!("line {}: expected `+|- src dst`", ln + 1))?;
        match sign {
            "+" => current.push(EdgeMutation::insert(s, d)),
            "-" => current.push(EdgeMutation::delete(s, d)),
            other => return Err(format!("line {}: bad sign `{other}`", ln + 1)),
        }
    }
    if !current.is_empty() {
        batches.push(MutationBatch::new(current));
    }
    Ok(batches)
}

fn print_results(session: &Session) {
    // Globals.
    for g in &session.program.symbols.globals {
        if let Ok(v) = session.global_value(&g.name, None) {
            println!("  global {} = {}", g.name, v);
        }
    }
    // First few vertices' non-accm attributes (skip `active`).
    let n = session.graph.num_vertices().min(10);
    let attrs: Vec<String> = session.program.symbols.attrs[1..]
        .iter()
        .map(|a| a.name.clone())
        .collect();
    if attrs.is_empty() {
        return;
    }
    for v in 0..n as u64 {
        let vals: Vec<String> = attrs
            .iter()
            .map(|a| {
                session
                    .attr_value(v, a)
                    .map(|x| format!("{a}={x}"))
                    .unwrap_or_default()
            })
            .collect();
        println!("  v{v}: {}", vals.join("  "));
    }
    if session.graph.num_vertices() > 10 {
        println!("  … ({} vertices total)", session.graph.num_vertices());
    }
}
