//! # itg-obs — structured observability for the iTurboGraph stack
//!
//! A vendored, zero-dependency `tracing`-style core (the crates.io registry
//! is unreachable in this build environment, matching the `vendor/`
//! pattern) providing the three instrument kinds the paper's evaluation
//! (§6) reports per phase:
//!
//! - **Spans** — aggregated wall-clock timers keyed by a hierarchical
//!   `/`-separated path (e.g. `run/traverse/seek`) and an optional
//!   [`OpId`] joining the measurement back to a compiled plan operator.
//! - **Counters** — monotonically increasing `u64`s (Δ-stream tuple
//!   cardinalities, recomputation triggers), also `OpId`-keyed.
//! - **Histograms** — log₂-bucketed distributions for store IO sizes and
//!   latencies, with quantile estimation.
//!
//! The central type is [`Recorder`]. A **disabled** recorder (the default)
//! is a handle around `None`: every instrument resolves to a no-op whose
//! hot-path cost is one branch — no clock reads, no atomics, no locks —
//! which is what keeps instrumented code within the <2% overhead budget
//! (see `cargo bench` group `obs_overhead`). An **enabled** recorder
//! aggregates lock-free: callers resolve a [`SpanHandle`] /
//! [`CounterHandle`] / [`HistHandle`] once (one mutex acquisition to
//! intern the key) and the per-event cost is then a pair of relaxed atomic
//! adds.
//!
//! Snapshots are taken with [`Recorder::profile`], producing a [`Profile`]
//! that supports interval arithmetic ([`Profile::since`]), merging
//! ([`Profile::merge`]), JSON export ([`Profile::to_json`] — schema pinned
//! by a golden-file test), and human-readable per-operator breakdown
//! tables ([`render_breakdown`]).
//!
//! ```
//! use itg_obs::Recorder;
//!
//! let rec = Recorder::enabled();
//! let span = rec.span("run/traverse");
//! {
//!     let _guard = span.start(); // timed until dropped
//! }
//! rec.counter_op("delta/starts", 17).add(3);
//!
//! let profile = rec.profile();
//! assert_eq!(profile.counter_total("delta/starts"), 3);
//! assert!(profile.to_json().contains("\"version\": 1"));
//! ```

mod hist;
mod profile;

pub use hist::{HistCell, HistStat};
pub use profile::{render_breakdown, CounterStat, Profile, SpanStat, SCHEMA_VERSION};

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Stable operator identifier carried by compiled plan nodes, joining a
/// span or counter back to the algebra operator that produced it.
pub type OpId = u32;

/// Instrument key: a static hierarchical path plus an optional operator id.
type Key = (&'static str, Option<OpId>);

/// Aggregated timer state for one span key.
#[derive(Debug, Default)]
struct SpanCell {
    count: AtomicU64,
    total_ns: AtomicU64,
}

#[derive(Debug, Default)]
struct Inner {
    spans: Mutex<BTreeMap<Key, Arc<SpanCell>>>,
    counters: Mutex<BTreeMap<Key, Arc<AtomicU64>>>,
    hists: Mutex<BTreeMap<&'static str, Arc<HistCell>>>,
}

/// The observability recorder: either disabled (all instruments no-op) or
/// an [`Arc`]'d aggregation table shared by everything it is cloned into.
///
/// Cloning is cheap and clones share state, exactly like `itg-store`'s
/// IO counters — the engine clones one recorder into its stores, walkers,
/// and worker threads.
#[derive(Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.inner.is_some() {
            "Recorder(enabled)"
        } else {
            "Recorder(disabled)"
        })
    }
}

impl Recorder {
    /// A disabled recorder: every handle it hands out is a no-op.
    pub fn disabled() -> Recorder {
        Recorder { inner: None }
    }

    /// An enabled recorder with empty aggregation tables.
    pub fn enabled() -> Recorder {
        Recorder {
            inner: Some(Arc::new(Inner::default())),
        }
    }

    /// Whether instruments resolved from this recorder record anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Resolve the span timer at `path` (no operator id).
    pub fn span(&self, path: &'static str) -> SpanHandle {
        self.span_keyed(path, None)
    }

    /// Resolve the span timer at `path` for plan operator `op`.
    pub fn span_op(&self, path: &'static str, op: OpId) -> SpanHandle {
        self.span_keyed(path, Some(op))
    }

    fn span_keyed(&self, path: &'static str, op: Option<OpId>) -> SpanHandle {
        SpanHandle(self.inner.as_ref().map(|inner| {
            Arc::clone(
                inner
                    .spans
                    .lock()
                    .unwrap()
                    .entry((path, op))
                    .or_default(),
            )
        }))
    }

    /// Resolve the counter at `path` (no operator id).
    pub fn counter(&self, path: &'static str) -> CounterHandle {
        self.counter_keyed(path, None)
    }

    /// Resolve the counter at `path` for plan operator `op`.
    pub fn counter_op(&self, path: &'static str, op: OpId) -> CounterHandle {
        self.counter_keyed(path, Some(op))
    }

    fn counter_keyed(&self, path: &'static str, op: Option<OpId>) -> CounterHandle {
        CounterHandle(self.inner.as_ref().map(|inner| {
            Arc::clone(
                inner
                    .counters
                    .lock()
                    .unwrap()
                    .entry((path, op))
                    .or_default(),
            )
        }))
    }

    /// Resolve the histogram at `path`.
    pub fn hist(&self, path: &'static str) -> HistHandle {
        HistHandle(self.inner.as_ref().map(|inner| {
            Arc::clone(inner.hists.lock().unwrap().entry(path).or_default())
        }))
    }

    /// Snapshot every instrument into a [`Profile`]. Disabled recorders
    /// return an empty profile.
    pub fn profile(&self) -> Profile {
        let Some(inner) = &self.inner else {
            return Profile::default();
        };
        let spans = inner
            .spans
            .lock()
            .unwrap()
            .iter()
            .map(|(&(path, op), cell)| SpanStat {
                path: path.to_string(),
                op,
                count: cell.count.load(Ordering::Relaxed),
                total_ns: cell.total_ns.load(Ordering::Relaxed),
            })
            .collect();
        let counters = inner
            .counters
            .lock()
            .unwrap()
            .iter()
            .map(|(&(path, op), cell)| CounterStat {
                path: path.to_string(),
                op,
                value: cell.load(Ordering::Relaxed),
            })
            .collect();
        let hists = inner
            .hists
            .lock()
            .unwrap()
            .iter()
            .map(|(&path, cell)| cell.snapshot(path))
            .collect();
        Profile {
            spans,
            counters,
            hists,
        }
    }
}

/// A resolved span timer. Cheap to clone; clones aggregate into the same
/// cell. Disabled handles never read the clock.
#[derive(Clone, Debug, Default)]
pub struct SpanHandle(Option<Arc<SpanCell>>);

impl SpanHandle {
    /// Start timing; the elapsed interval is recorded when the guard drops.
    #[inline]
    #[must_use = "the span measures until the guard is dropped"]
    pub fn start(&self) -> SpanGuard<'_> {
        SpanGuard {
            cell: self.0.as_deref().map(|cell| (cell, Instant::now())),
        }
    }

    /// Record a pre-measured interval (bulk flush from thread-local
    /// aggregation).
    #[inline]
    pub fn record(&self, count: u64, total_ns: u64) {
        if let Some(cell) = &self.0 {
            cell.count.fetch_add(count, Ordering::Relaxed);
            cell.total_ns.fetch_add(total_ns, Ordering::Relaxed);
        }
    }

    /// Whether this handle records anywhere.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }
}

/// Live span measurement; records into its cell on drop.
pub struct SpanGuard<'a> {
    cell: Option<(&'a SpanCell, Instant)>,
}

impl Drop for SpanGuard<'_> {
    #[inline]
    fn drop(&mut self) {
        if let Some((cell, started)) = self.cell.take() {
            cell.count.fetch_add(1, Ordering::Relaxed);
            cell.total_ns
                .fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
    }
}

/// A resolved counter. Cheap to clone; clones share the cell.
#[derive(Clone, Debug, Default)]
pub struct CounterHandle(Option<Arc<AtomicU64>>);

impl CounterHandle {
    /// Add `n` to the counter (no-op when disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Whether this handle records anywhere.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }
}

/// A resolved histogram. Cheap to clone; clones share the cell.
#[derive(Clone, Debug, Default)]
pub struct HistHandle(Option<Arc<HistCell>>);

impl HistHandle {
    /// Record one observation (bytes, nanoseconds, …).
    #[inline]
    pub fn observe(&self, value: u64) {
        if let Some(cell) = &self.0 {
            cell.observe(value);
        }
    }

    /// Record a duration observation in nanoseconds.
    #[inline]
    pub fn observe_duration(&self, d: std::time::Duration) {
        self.observe(d.as_nanos() as u64);
    }

    /// Whether this handle records anywhere.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }
}

static GLOBAL: OnceLock<Recorder> = OnceLock::new();

/// The process-global recorder.
///
/// Initialized on first use: enabled when the `ITG_PROFILE` environment
/// variable is set to anything but `0` or the empty string, disabled
/// otherwise. [`init_global`] can force the decision before first use
/// (the `expt --profile` path). `EngineConfig::default()` clones this
/// recorder, so setting `ITG_PROFILE=1` profiles any session that does
/// not override `EngineConfig::obs` explicitly.
pub fn global() -> &'static Recorder {
    GLOBAL.get_or_init(|| {
        let on = std::env::var("ITG_PROFILE")
            .map(|v| !v.is_empty() && v != "0")
            .unwrap_or(false);
        if on {
            Recorder::enabled()
        } else {
            Recorder::disabled()
        }
    })
}

/// Force the global recorder's state before anything reads it. Returns
/// `false` (leaving the existing recorder in place) when the global was
/// already initialized — callers that need profiling on should call this
/// first thing in `main`.
pub fn init_global(enabled: bool) -> bool {
    GLOBAL
        .set(if enabled {
            Recorder::enabled()
        } else {
            Recorder::disabled()
        })
        .is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_inert() {
        let rec = Recorder::disabled();
        assert!(!rec.is_enabled());
        let span = rec.span("a/b");
        assert!(!span.is_enabled());
        drop(span.start());
        rec.counter("c").add(5);
        rec.hist("h").observe(10);
        assert_eq!(rec.profile(), Profile::default());
    }

    #[test]
    fn spans_aggregate_counts_and_time() {
        let rec = Recorder::enabled();
        let span = rec.span("run/traverse");
        for _ in 0..3 {
            let _g = span.start();
        }
        span.record(2, 1000);
        let p = rec.profile();
        let s = &p.spans[0];
        assert_eq!(s.path, "run/traverse");
        assert_eq!(s.op, None);
        assert_eq!(s.count, 5);
        assert!(s.total_ns >= 1000);
    }

    #[test]
    fn op_keys_are_distinct() {
        let rec = Recorder::enabled();
        rec.counter_op("delta/starts", 17).add(2);
        rec.counter_op("delta/starts", 18).add(3);
        rec.counter("delta/starts").add(1);
        let p = rec.profile();
        assert_eq!(p.counters.len(), 3);
        assert_eq!(p.counter_total("delta/starts"), 6);
    }

    #[test]
    fn clones_share_cells() {
        let rec = Recorder::enabled();
        let c1 = rec.counter("x");
        let c2 = c1.clone();
        c1.add(1);
        c2.add(1);
        rec.counter("x").add(1);
        assert_eq!(rec.profile().counter_total("x"), 3);
    }

    #[test]
    fn threads_aggregate_into_one_cell() {
        let rec = Recorder::enabled();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = rec.counter("t");
                let s = rec.span("s");
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        c.add(1);
                        s.record(1, 10);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let p = rec.profile();
        assert_eq!(p.counter_total("t"), 400);
        assert_eq!(p.span_total_ns("s"), 4000);
    }
}
