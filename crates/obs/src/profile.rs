//! Hierarchical profiles: snapshots of a [`Recorder`](crate::Recorder)'s
//! instruments with interval arithmetic, merging, JSON export, and
//! human-readable breakdown rendering.
//!
//! The JSON schema (version 1) is pinned by the golden-file test in
//! `tests/golden.rs`; bump `SCHEMA_VERSION` and the golden file together
//! when the shape changes.

use crate::hist::HistStat;
use crate::OpId;

/// JSON schema version emitted by [`Profile::to_json`].
pub const SCHEMA_VERSION: u32 = 1;

/// Aggregated timer statistics for one `(path, op)` span key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanStat {
    pub path: String,
    pub op: Option<OpId>,
    /// Number of recorded intervals.
    pub count: u64,
    /// Total recorded wall-clock time, nanoseconds.
    pub total_ns: u64,
}

/// One `(path, op)` counter value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterStat {
    pub path: String,
    pub op: Option<OpId>,
    pub value: u64,
}

/// A point-in-time snapshot of every instrument of a recorder.
///
/// Span paths are hierarchical (`/`-separated); the run-phase convention
/// is that `run/<phase>` spans are disjoint siblings covering the whole
/// run, with deeper paths (e.g. `run/traverse/seek`) attributing time
/// *within* a phase — so summing [`Profile::phase_total_ns`] against a
/// run's wall time measures instrumentation coverage without double
/// counting.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Profile {
    /// Sorted by `(path, op)`.
    pub spans: Vec<SpanStat>,
    /// Sorted by `(path, op)`.
    pub counters: Vec<CounterStat>,
    /// Sorted by path.
    pub hists: Vec<HistStat>,
}

impl Profile {
    /// Total recorded nanoseconds across every op of span `path`.
    pub fn span_total_ns(&self, path: &str) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.path == path)
            .map(|s| s.total_ns)
            .sum()
    }

    /// Total count across every op of counter `path`.
    pub fn counter_total(&self, path: &str) -> u64 {
        self.counters
            .iter()
            .filter(|c| c.path == path)
            .map(|c| c.value)
            .sum()
    }

    /// The histogram snapshot at `path`, if recorded.
    pub fn hist(&self, path: &str) -> Option<&HistStat> {
        self.hists.iter().find(|h| h.path == path)
    }

    /// Sum of the top-level run-phase spans (paths of the form
    /// `run/<phase>` — exactly two segments). These are disjoint by
    /// construction, so this is the instrumented share of a run's wall
    /// time.
    pub fn phase_total_ns(&self) -> u64 {
        self.spans
            .iter()
            .filter(|s| {
                s.path.starts_with("run/") && s.path.matches('/').count() == 1
            })
            .map(|s| s.total_ns)
            .sum()
    }

    /// Interval profile `self − earlier`: entry-wise subtraction on
    /// matching keys, dropping entries that become zero. Both snapshots
    /// must come from the same recorder (counters are monotonic).
    pub fn since(&self, earlier: &Profile) -> Profile {
        let spans = self
            .spans
            .iter()
            .filter_map(|s| {
                let e = earlier
                    .spans
                    .iter()
                    .find(|e| e.path == s.path && e.op == s.op);
                let count = s.count.saturating_sub(e.map_or(0, |e| e.count));
                let total_ns = s.total_ns.saturating_sub(e.map_or(0, |e| e.total_ns));
                (count > 0 || total_ns > 0).then(|| SpanStat {
                    path: s.path.clone(),
                    op: s.op,
                    count,
                    total_ns,
                })
            })
            .collect();
        let counters = self
            .counters
            .iter()
            .filter_map(|c| {
                let e = earlier
                    .counters
                    .iter()
                    .find(|e| e.path == c.path && e.op == c.op);
                let value = c.value.saturating_sub(e.map_or(0, |e| e.value));
                (value > 0).then(|| CounterStat {
                    path: c.path.clone(),
                    op: c.op,
                    value,
                })
            })
            .collect();
        let hists = self
            .hists
            .iter()
            .filter_map(|h| {
                let d = match earlier.hists.iter().find(|e| e.path == h.path) {
                    Some(e) => h.since(e),
                    None => h.clone(),
                };
                (d.count > 0).then_some(d)
            })
            .collect();
        Profile {
            spans,
            counters,
            hists,
        }
    }

    /// Merge `other` into `self`, adding matching keys and appending new
    /// ones (keeps the sorted order).
    pub fn merge(&mut self, other: &Profile) {
        for s in &other.spans {
            match self
                .spans
                .iter_mut()
                .find(|m| m.path == s.path && m.op == s.op)
            {
                Some(m) => {
                    m.count += s.count;
                    m.total_ns += s.total_ns;
                }
                None => self.spans.push(s.clone()),
            }
        }
        self.spans.sort_by(|a, b| (&a.path, a.op).cmp(&(&b.path, b.op)));
        for c in &other.counters {
            match self
                .counters
                .iter_mut()
                .find(|m| m.path == c.path && m.op == c.op)
            {
                Some(m) => m.value += c.value,
                None => self.counters.push(c.clone()),
            }
        }
        self.counters
            .sort_by(|a, b| (&a.path, a.op).cmp(&(&b.path, b.op)));
        for h in &other.hists {
            match self.hists.iter_mut().find(|m| m.path == h.path) {
                Some(m) => m.merge(h),
                None => self.hists.push(h.clone()),
            }
        }
        self.hists.sort_by(|a, b| a.path.cmp(&b.path));
    }

    /// Machine-readable JSON export (schema version
    /// [`SCHEMA_VERSION`], deterministic field and entry order, pinned by
    /// the golden-file test).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n");
        out.push_str(&format!("  \"version\": {SCHEMA_VERSION},\n"));
        out.push_str("  \"spans\": [");
        for (i, s) in self.spans.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!(
                "    {{\"path\": {}, \"op\": {}, \"count\": {}, \"total_ns\": {}}}",
                json_string(&s.path),
                json_opt(s.op),
                s.count,
                s.total_ns
            ));
        }
        out.push_str(if self.spans.is_empty() { "],\n" } else { "\n  ],\n" });
        out.push_str("  \"counters\": [");
        for (i, c) in self.counters.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!(
                "    {{\"path\": {}, \"op\": {}, \"value\": {}}}",
                json_string(&c.path),
                json_opt(c.op),
                c.value
            ));
        }
        out.push_str(if self.counters.is_empty() { "],\n" } else { "\n  ],\n" });
        out.push_str("  \"histograms\": [");
        for (i, h) in self.hists.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!(
                "    {{\"path\": {}, \"count\": {}, \"sum\": {}, \"max\": {}, \
                 \"p50\": {}, \"p95\": {}, \"p99\": {}, \"buckets\": [{}]}}",
                json_string(&h.path),
                h.count,
                h.sum,
                h.max,
                h.quantile(0.50),
                h.quantile(0.95),
                h.quantile(0.99),
                h.buckets
                    .iter()
                    .map(|(b, n)| format!("[{b}, {n}]"))
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
        }
        out.push_str(if self.hists.is_empty() { "]\n" } else { "\n  ]\n" });
        out.push_str("}\n");
        out
    }
}

/// Escape a string into a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_opt(op: Option<OpId>) -> String {
    match op {
        Some(o) => o.to_string(),
        None => "null".to_string(),
    }
}

/// Render a per-operator cost breakdown table of `profile` against a run's
/// wall time. Span rows are indented by path depth; rows carrying an
/// [`OpId`] are annotated with the matching label from `labels` (the
/// compiler's operator table), joining measurements back to the algebra
/// plan. Ends with the coverage line the acceptance check reads: the share
/// of `wall_ns` attributed to the disjoint top-level `run/*` phases.
pub fn render_breakdown(profile: &Profile, wall_ns: u64, labels: &[(OpId, String)]) -> String {
    let label_of = |op: Option<OpId>| -> String {
        match op {
            None => String::new(),
            Some(o) => labels
                .iter()
                .find(|(id, _)| *id == o)
                .map(|(_, l)| format!("  [{l}]"))
                .unwrap_or_else(|| format!("  [op {o}]")),
        }
    };
    let mut out = String::new();
    out.push_str(&format!(
        "{:<44} {:>12} {:>14} {:>8}\n",
        "span", "count", "total [ms]", "% wall"
    ));
    for s in &profile.spans {
        let depth = s.path.matches('/').count();
        let indent = "  ".repeat(depth.saturating_sub(1));
        let pct = if wall_ns > 0 {
            100.0 * s.total_ns as f64 / wall_ns as f64
        } else {
            0.0
        };
        out.push_str(&format!(
            "{:<44} {:>12} {:>14.3} {:>7.1}%\n",
            format!("{indent}{}{}", s.path, label_of(s.op)),
            s.count,
            s.total_ns as f64 / 1e6,
            pct
        ));
    }
    if !profile.counters.is_empty() {
        out.push_str(&format!("\n{:<44} {:>12}\n", "counter", "value"));
        for c in &profile.counters {
            out.push_str(&format!(
                "{:<44} {:>12}\n",
                format!("{}{}", c.path, label_of(c.op)),
                c.value
            ));
        }
    }
    if !profile.hists.is_empty() {
        out.push_str(&format!(
            "\n{:<44} {:>10} {:>12} {:>10} {:>10} {:>10}\n",
            "histogram", "count", "mean", "p50", "p99", "max"
        ));
        for h in &profile.hists {
            out.push_str(&format!(
                "{:<44} {:>10} {:>12.1} {:>10} {:>10} {:>10}\n",
                h.path,
                h.count,
                h.mean(),
                h.quantile(0.50),
                h.quantile(0.99),
                h.max
            ));
        }
    }
    let covered = profile.phase_total_ns();
    let pct = if wall_ns > 0 {
        100.0 * covered as f64 / wall_ns as f64
    } else {
        0.0
    };
    out.push_str(&format!(
        "\nphase coverage: {:.3} ms instrumented of {:.3} ms wall ({pct:.1}%)\n",
        covered as f64 / 1e6,
        wall_ns as f64 / 1e6,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;

    fn sample() -> Recorder {
        let rec = Recorder::enabled();
        rec.span("run/traverse").record(2, 3_000_000);
        rec.span("run/traverse/seek").record(10, 1_000_000);
        rec.span("run/update").record(1, 1_000_000);
        rec.counter_op("delta/starts", 17).add(42);
        rec.hist("store/disk_read_bytes").observe(4096);
        rec
    }

    #[test]
    fn phase_total_sums_only_top_level() {
        let p = sample().profile();
        assert_eq!(p.phase_total_ns(), 4_000_000);
    }

    #[test]
    fn since_drops_unchanged_entries() {
        let rec = sample();
        let a = rec.profile();
        rec.span("run/update").record(1, 500);
        rec.counter_op("delta/starts", 17).add(1);
        let d = rec.profile().since(&a);
        assert_eq!(d.spans.len(), 1);
        assert_eq!(d.spans[0].path, "run/update");
        assert_eq!(d.spans[0].total_ns, 500);
        assert_eq!(d.counters.len(), 1);
        assert_eq!(d.counters[0].value, 1);
        assert!(d.hists.is_empty());
    }

    #[test]
    fn merge_is_additive() {
        let mut a = sample().profile();
        let b = sample().profile();
        a.merge(&b);
        assert_eq!(a.span_total_ns("run/traverse"), 6_000_000);
        assert_eq!(a.counter_total("delta/starts"), 84);
        assert_eq!(a.hist("store/disk_read_bytes").unwrap().count, 2);
    }

    #[test]
    fn json_shape() {
        let p = sample().profile();
        let j = p.to_json();
        assert!(j.contains("\"version\": 1"));
        assert!(j.contains("\"path\": \"run/traverse\""));
        assert!(j.contains("\"op\": 17"));
        assert!(j.contains("\"op\": null"));
        assert!(j.contains("\"p50\": 4096"));
        // Empty profile still emits every section.
        let e = Profile::default().to_json();
        assert!(e.contains("\"spans\": []"));
        assert!(e.contains("\"counters\": []"));
        assert!(e.contains("\"histograms\": []"));
    }

    #[test]
    fn breakdown_renders_labels_and_coverage() {
        let p = sample().profile();
        let t = render_breakdown(&p, 5_000_000, &[(17, "ΔQ0 ω(Δes)".to_string())]);
        assert!(t.contains("run/traverse"));
        assert!(t.contains("[ΔQ0 ω(Δes)]"));
        assert!(t.contains("phase coverage"));
        assert!(t.contains("80.0%"), "4ms of 5ms wall: {t}");
    }

    #[test]
    fn json_escapes_strings() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }
}
