//! Log₂-bucketed histograms for IO sizes and latencies.
//!
//! Observations land in bucket `⌈log₂(v+1)⌉` (bucket 0 holds zeros), so 65
//! fixed buckets cover the full `u64` range with ≤2× relative quantile
//! error — the precision the store's page-granular IO actually has.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: zeros plus one per possible bit length.
pub(crate) const BUCKETS: usize = 65;

/// Lock-free histogram state: one atomic per bucket plus count/sum/max.
#[derive(Debug)]
pub struct HistCell {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for HistCell {
    fn default() -> HistCell {
        HistCell {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// Bucket index of a value: 0 for 0, else its bit length.
#[inline]
fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Upper bound of a bucket (inclusive): `2^i − 1`.
fn bucket_upper(i: usize) -> u64 {
    if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl HistCell {
    #[inline]
    pub(crate) fn observe(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self, path: &str) -> HistStat {
        HistStat {
            path: path.to_string(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, b)| {
                    let n = b.load(Ordering::Relaxed);
                    (n > 0).then_some((i as u8, n))
                })
                .collect(),
        }
    }
}

/// Point-in-time histogram snapshot with sparse buckets
/// `(bucket_index, count)`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistStat {
    pub path: String,
    pub count: u64,
    pub sum: u64,
    /// Largest single observation (not diffable; [`HistStat::since`] keeps
    /// the later interval's running max, an upper bound for the interval).
    pub max: u64,
    pub buckets: Vec<(u8, u64)>,
}

impl HistStat {
    /// Estimated quantile `q ∈ [0, 1]`: the upper bound of the bucket where
    /// the cumulative count crosses `q · count`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for &(i, n) in &self.buckets {
            seen += n;
            if seen >= target {
                return bucket_upper(i as usize).min(self.max);
            }
        }
        self.max
    }

    /// Mean observation.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Bucket-wise difference `self − earlier` (`max` is kept from `self`).
    pub fn since(&self, earlier: &HistStat) -> HistStat {
        let mut full = [0u64; BUCKETS];
        for &(i, n) in &self.buckets {
            full[i as usize] = n;
        }
        for &(i, n) in &earlier.buckets {
            full[i as usize] = full[i as usize].saturating_sub(n);
        }
        HistStat {
            path: self.path.clone(),
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            max: self.max,
            buckets: full
                .iter()
                .enumerate()
                .filter_map(|(i, &n)| (n > 0).then_some((i as u8, n)))
                .collect(),
        }
    }

    /// Bucket-wise sum (for merging per-run profiles).
    pub fn merge(&mut self, other: &HistStat) {
        let mut full = [0u64; BUCKETS];
        for &(i, n) in &self.buckets {
            full[i as usize] = n;
        }
        for &(i, n) in &other.buckets {
            full[i as usize] += n;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        self.buckets = full
            .iter()
            .enumerate()
            .filter_map(|(i, &n)| (n > 0).then_some((i as u8, n)))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
    }

    #[test]
    fn quantiles_and_mean() {
        let cell = HistCell::default();
        for v in [1u64, 1, 1, 1, 1, 1, 1, 1, 1, 1000] {
            cell.observe(v);
        }
        let s = cell.snapshot("h");
        assert_eq!(s.count, 10);
        assert_eq!(s.sum, 1009);
        assert_eq!(s.max, 1000);
        assert_eq!(s.quantile(0.5), 1);
        assert_eq!(s.quantile(1.0), 1000);
        assert!((s.mean() - 100.9).abs() < 1e-9);
    }

    #[test]
    fn since_subtracts_bucketwise() {
        let cell = HistCell::default();
        cell.observe(4);
        let a = cell.snapshot("h");
        cell.observe(4);
        cell.observe(9);
        let d = cell.snapshot("h").since(&a);
        assert_eq!(d.count, 2);
        assert_eq!(d.sum, 13);
        assert_eq!(d.buckets, vec![(3, 1), (4, 1)]);
    }

    #[test]
    fn merge_adds() {
        let c1 = HistCell::default();
        c1.observe(2);
        let c2 = HistCell::default();
        c2.observe(2);
        c2.observe(100);
        let mut a = c1.snapshot("h");
        a.merge(&c2.snapshot("h"));
        assert_eq!(a.count, 3);
        assert_eq!(a.max, 100);
    }
}
