//! Golden-file test pinning the JSON profile schema (version 1).
//!
//! `Profile::to_json` is the contract consumed by external tooling
//! (`expt --profile out.json`); any change to its shape must be made
//! deliberately by regenerating `tests/golden_profile.json` alongside a
//! schema-version bump.

use itg_obs::Recorder;

fn sample_profile_json() -> String {
    let rec = Recorder::enabled();
    rec.span("run/setup").record(1, 2_500_000);
    rec.span("run/traverse").record(3, 40_000_000);
    rec.span_op("run/traverse/seek", 1).record(120, 25_000_000);
    rec.span_op("run/traverse/join", 1).record(118, 9_000_000);
    rec.span("run/update").record(3, 1_500_000);
    rec.counter_op("delta/starts", 17).add(640);
    rec.counter_op("delta/contribs", 17).add(512);
    rec.counter("delta/recompute_triggers").add(4);
    rec.counter_op("oneshot/starts", 1).add(100_000);
    let h = rec.hist("store/disk_read_bytes");
    h.observe(4096);
    h.observe(4096);
    h.observe(65536);
    rec.profile().to_json()
}

#[test]
fn json_profile_matches_golden_file() {
    let got = sample_profile_json();
    let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden_profile.json");
    if std::env::var_os("ITG_BLESS").is_some() {
        std::fs::write(golden_path, &got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(golden_path)
        .expect("golden file missing — run with ITG_BLESS=1 to regenerate");
    assert_eq!(
        got, want,
        "JSON profile schema drifted from tests/golden_profile.json; \
         if intentional, bump itg_obs::SCHEMA_VERSION and rerun with ITG_BLESS=1"
    );
}

#[test]
fn json_is_stable_across_recorders() {
    assert_eq!(sample_profile_json(), sample_profile_json());
}
