//! Store-level durability properties across the public facade: attribute
//! history reconstruction is invariant under merge policy and merge
//! timing, and the edge store's time-travel views stay consistent through
//! arbitrary mutation histories.

use iturbograph::gsa::value::{ColumnData, PrimType, Value, ValueType};
use iturbograph::store::{
    AttrStore, BufferPool, EdgeMutation, EdgeStore, IoStats, MaintenancePolicy, MutationBatch,
    View,
};
use proptest::prelude::*;
use std::sync::Arc;

/// Random attribute-change history: per (snapshot, superstep), a set of
/// (vertex, value) after-images.
fn history() -> impl Strategy<Value = Vec<Vec<Vec<(u32, i64)>>>> {
    proptest::collection::vec(
        proptest::collection::vec(
            proptest::collection::vec((0u32..16, -100i64..100), 0..6),
            1..4, // supersteps
        ),
        1..8, // snapshots
    )
}

fn build_store(policy: MaintenancePolicy, hist: &[Vec<Vec<(u32, i64)>>]) -> AttrStore {
    let mut st = AttrStore::new(
        vec![ValueType::Prim(PrimType::Long)],
        16,
        policy,
        IoStats::new(),
    );
    for (t, supersteps) in hist.iter().enumerate() {
        for (s, changes) in supersteps.iter().enumerate() {
            if changes.is_empty() {
                continue;
            }
            let mut dedup: std::collections::BTreeMap<u32, i64> = Default::default();
            for &(v, x) in changes {
                dedup.insert(v, x);
            }
            let vids: Vec<u32> = dedup.keys().copied().collect();
            let col = ColumnData::Long(dedup.values().copied().collect());
            st.record_run(t, s, vids, vec![col]);
        }
    }
    st
}

fn materialize_final(st: &AttrStore, supersteps: usize) -> Vec<Value> {
    let mut arr = st.materialize_init();
    for s in 0..supersteps {
        st.load_superstep(s, &mut arr);
    }
    (0..16).map(|i| arr[0].get(i)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// All three maintenance policies reconstruct identical attribute
    /// images from the same history.
    #[test]
    fn merge_policy_is_transparent(hist in history()) {
        let max_ss = hist.iter().map(|s| s.len()).max().unwrap_or(0);
        let plain = build_store(MaintenancePolicy::NoMerge, &hist);
        let periodic = build_store(MaintenancePolicy::Periodic(2), &hist);
        let cost = build_store(MaintenancePolicy::CostBased, &hist);
        let a = materialize_final(&plain, max_ss);
        let b = materialize_final(&periodic, max_ss);
        let c = materialize_final(&cost, max_ss);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(&a, &c);
    }

    /// Forcing merges at arbitrary points never changes reconstruction.
    #[test]
    fn explicit_merges_are_transparent(hist in history(), merge_at in 0usize..4) {
        let max_ss = hist.iter().map(|s| s.len()).max().unwrap_or(0);
        let baseline = build_store(MaintenancePolicy::NoMerge, &hist);
        let mut merged = build_store(MaintenancePolicy::NoMerge, &hist);
        merged.merge_chain(merge_at);
        prop_assert_eq!(
            materialize_final(&baseline, max_ss),
            materialize_final(&merged, max_ss)
        );
    }
}

// Random edge mutation histories keep Old/New views and the delta stream
// mutually consistent.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn edge_store_views_are_consistent(
        batches in proptest::collection::vec(
            proptest::collection::vec((0u64..12, 0u64..12), 1..6),
            1..6,
        )
    ) {
        let pool = Arc::new(BufferPool::new(1 << 20, 256, IoStats::new()));
        let base: Vec<(u64, u64)> = vec![(0, 1), (1, 2), (2, 3), (3, 0)];
        let mut store = EdgeStore::new(12, &base, false, pool);
        let mut model: std::collections::BTreeSet<(u64, u64)> = base.iter().copied().collect();

        for raw in batches {
            let mut prev_model = model.clone();
            std::mem::swap(&mut prev_model, &mut model);
            model = prev_model.clone();
            let mut muts = Vec::new();
            for (a, b) in raw {
                if a == b {
                    continue;
                }
                // Legal mutation: insert if absent, delete if present.
                if model.contains(&(a, b)) {
                    model.remove(&(a, b));
                    muts.push(EdgeMutation::delete(a, b));
                } else {
                    model.insert((a, b));
                    muts.push(EdgeMutation::insert(a, b));
                }
            }
            if muts.is_empty() {
                continue;
            }
            store.commit(&MutationBatch::new(muts));

            // New view matches the model.
            for v in 0..12u64 {
                let mut got = store.out_dir().neighbors(v, View::New);
                got.sort_unstable();
                let want: Vec<u64> = model
                    .iter()
                    .filter(|&&(s, _)| s == v)
                    .map(|&(_, d)| d)
                    .collect();
                prop_assert_eq!(&got, &want, "New view of {}", v);
                prop_assert_eq!(
                    store.out_dir().degree(v, View::New) as usize,
                    want.len()
                );
            }
            // Old view matches the previous model.
            for v in 0..12u64 {
                let mut got = store.out_dir().neighbors(v, View::Old);
                got.sort_unstable();
                let want: Vec<u64> = prev_model
                    .iter()
                    .filter(|&&(s, _)| s == v)
                    .map(|&(_, d)| d)
                    .collect();
                prop_assert_eq!(&got, &want, "Old view of {}", v);
            }
            // Delta stream equals the symmetric difference with signs.
            let mut delta = Vec::new();
            store.out_dir().for_each_delta_edge(|s, d, m| delta.push((s, d, m)));
            delta.sort_unstable();
            let mut want: Vec<(u64, u64, i64)> = model
                .difference(&prev_model)
                .map(|&(s, d)| (s, d, 1))
                .chain(prev_model.difference(&model).map(|&(s, d)| (s, d, -1)))
                .collect();
            want.sort_unstable();
            prop_assert_eq!(delta, want);
        }
    }
}
