//! Workspace-level end-to-end tests driving the public `iturbograph`
//! facade: DSL source text in, incremental analytics out, across cluster
//! sizes, optimization settings, and mutation patterns.

use iturbograph::algorithms::{native, SimpleGraph};
use iturbograph::graphgen::{generate_undirected, BatchSpec, RmatConfig, Workload};
use iturbograph::prelude::*;

fn rmat_workload(x: u32, seed: u64) -> (usize, Workload) {
    let cfg = RmatConfig::paper_scale(x, seed);
    let edges = generate_undirected(&cfg);
    let canonical = iturbograph::graphgen::canonical_undirected(&edges);
    (cfg.num_vertices(), Workload::split(&canonical, seed))
}

#[test]
fn rmat_triangle_pipeline_matches_reference() {
    let (n, mut workload) = rmat_workload(10, 5);
    let mut input = GraphInput::undirected(workload.initial.clone());
    input.num_vertices = n;
    let mut session = SessionBuilder::from_config(EngineConfig::with_machines(3)).from_source(iturbograph::algorithms::TRIANGLE_COUNT, &input)
    .unwrap();
    session.run_oneshot();

    let mut alive = workload.initial.clone();
    for _ in 0..4 {
        let batch = workload.next_batch(BatchSpec {
            size: 20,
            insert_pct: 70,
        });
        for m in batch.edges() {
            let key = (m.src.min(m.dst), m.src.max(m.dst));
            if m.is_insert() {
                alive.push(key);
            } else {
                alive.retain(|&e| e != key);
            }
        }
        session.apply_mutations(&batch);
        session.run_incremental();
        let expected = native::triangle_count(&SimpleGraph::undirected(n, &alive));
        assert_eq!(
            session.global_value("cnts", None).unwrap(),
            Value::Long(expected)
        );
    }
}

#[test]
fn wcc_pipeline_on_rmat_with_heavy_deletions() {
    let (n, mut workload) = rmat_workload(9, 8);
    let mut input = GraphInput::undirected(workload.initial.clone());
    input.num_vertices = n;
    let mut session = SessionBuilder::from_config(EngineConfig::with_machines(2)).from_source(iturbograph::algorithms::WCC, &input)
    .unwrap();
    session.run_oneshot();

    let mut alive = workload.initial.clone();
    for _ in 0..3 {
        // Deletion-heavy: exercises the Min-monoid recompute machinery.
        let batch = workload.next_batch(BatchSpec {
            size: 24,
            insert_pct: 25,
        });
        for m in batch.edges() {
            let key = (m.src.min(m.dst), m.src.max(m.dst));
            if m.is_insert() {
                alive.push(key);
            } else {
                alive.retain(|&e| e != key);
            }
        }
        session.apply_mutations(&batch);
        session.run_incremental();
    }
    let expected = native::wcc(&SimpleGraph::undirected(n, &alive));
    let got: Vec<i64> = session
        .attr_column("comp")
        .unwrap()
        .into_iter()
        .map(|v| v.as_i64().unwrap())
        .collect();
    assert_eq!(got, expected);
}

#[test]
fn insertion_only_and_deletion_only_workloads() {
    let (n, _) = rmat_workload(9, 13);
    let cfg = RmatConfig::paper_scale(9, 13);
    let edges = iturbograph::graphgen::canonical_undirected(&generate_undirected(&cfg));
    let mut input = GraphInput::undirected(edges.clone());
    input.num_vertices = n;

    // Insertion-only stream.
    let cut = edges.len() * 8 / 10;
    let mut base_input = GraphInput::undirected(edges[..cut].to_vec());
    base_input.num_vertices = n;
    let mut s = SessionBuilder::from_config(EngineConfig::default()).from_source(iturbograph::algorithms::TRIANGLE_COUNT, &base_input)
    .unwrap();
    s.run_oneshot();
    s.apply_mutations(&MutationBatch::new(
        edges[cut..]
            .iter()
            .map(|&(a, b)| EdgeMutation::insert(a, b))
            .collect(),
    ));
    s.run_incremental();
    let full_count = native::triangle_count(&SimpleGraph::undirected(n, &edges));
    assert_eq!(s.global_value("cnts", None).unwrap(), Value::Long(full_count));

    // Deletion-only stream back down to the base graph.
    s.apply_mutations(&MutationBatch::new(
        edges[cut..]
            .iter()
            .map(|&(a, b)| EdgeMutation::delete(a, b))
            .collect(),
    ));
    s.run_incremental();
    let base_count = native::triangle_count(&SimpleGraph::undirected(n, &edges[..cut]));
    assert_eq!(s.global_value("cnts", None).unwrap(), Value::Long(base_count));
}

#[test]
fn bfs_incremental_tracks_shrinking_distances() {
    // Path 0-1-2-3-4-5; inserting a shortcut (0,4) shortens distances.
    let input = GraphInput::undirected(vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
    let mut s = SessionBuilder::from_config(EngineConfig::default()).from_source(&iturbograph::algorithms::bfs(0), &input)
    .unwrap();
    s.run_oneshot();
    assert_eq!(s.attr_value(5, "dist").unwrap(), Value::Long(5));

    s.apply_mutations(&MutationBatch::new(vec![EdgeMutation::insert(0, 4)]));
    s.run_incremental();
    assert_eq!(s.attr_value(4, "dist").unwrap(), Value::Long(1));
    assert_eq!(s.attr_value(5, "dist").unwrap(), Value::Long(2));

    // Deleting the shortcut restores the original distances (monoid
    // recompute across supersteps).
    s.apply_mutations(&MutationBatch::new(vec![EdgeMutation::delete(0, 4)]));
    s.run_incremental();
    assert_eq!(s.attr_value(5, "dist").unwrap(), Value::Long(5));
}

#[test]
fn bfs_disconnection_resets_to_infinity() {
    let input = GraphInput::undirected(vec![(0, 1), (1, 2)]);
    let mut s = SessionBuilder::from_config(EngineConfig::default()).from_source(&iturbograph::algorithms::bfs(0), &input)
    .unwrap();
    s.run_oneshot();
    assert_eq!(s.attr_value(2, "dist").unwrap(), Value::Long(2));
    s.apply_mutations(&MutationBatch::new(vec![EdgeMutation::delete(1, 2)]));
    s.run_incremental();
    assert_eq!(
        s.attr_value(2, "dist").unwrap(),
        Value::Long(iturbograph::algorithms::BFS_INF)
    );
}

#[test]
fn machine_counts_agree_on_results() {
    let (n, _) = rmat_workload(9, 21);
    let cfg = RmatConfig::paper_scale(9, 21);
    let edges = iturbograph::graphgen::canonical_undirected(&generate_undirected(&cfg));
    let mut counts = Vec::new();
    for machines in [1, 2, 5, 8] {
        let mut input = GraphInput::undirected(edges.clone());
        input.num_vertices = n;
        let mut s = SessionBuilder::from_config(EngineConfig::with_machines(machines)).from_source(iturbograph::algorithms::TRIANGLE_COUNT, &input)
        .unwrap();
        s.run_oneshot();
        s.apply_mutations(&MutationBatch::new(vec![
            EdgeMutation::insert(0, n as u64 / 2),
            EdgeMutation::insert(1, n as u64 / 2),
        ]));
        s.run_incremental();
        counts.push(s.global_value("cnts", None).unwrap());
    }
    assert!(counts.windows(2).all(|w| w[0] == w[1]), "{counts:?}");
}

#[test]
fn incremental_beats_reexecution_on_io() {
    // The paper's headline: incremental updates read far fewer bytes than
    // re-execution. Verify the *shape* holds end-to-end on a real workload.
    let (n, mut workload) = rmat_workload(12, 33);
    let mut input = GraphInput::undirected(workload.initial.clone());
    input.num_vertices = n;
    let mut s = SessionBuilder::from_config(EngineConfig::default()).from_source(iturbograph::algorithms::TRIANGLE_COUNT, &input)
    .unwrap();
    let one = s.run_oneshot();

    let batch = workload.next_batch(BatchSpec {
        size: 10,
        insert_pct: 75,
    });
    s.apply_mutations(&batch);
    let inc = s.run_incremental();
    assert!(
        inc.io.walks_enumerated * 4 < one.io.walks_enumerated,
        "Δ-walks {} should be well below one-shot walks {}",
        inc.io.walks_enumerated,
        one.io.walks_enumerated
    );
    assert!(
        inc.io.disk_read_bytes < one.io.disk_read_bytes,
        "incremental read {} !< one-shot read {}",
        inc.io.disk_read_bytes,
        one.io.disk_read_bytes
    );
}

#[test]
fn error_paths_are_reported() {
    // Parse error.
    let bad = SessionBuilder::from_config(EngineConfig::default()).from_source("Vertex (id) wat", &GraphInput::undirected(vec![(0, 1)]));
    assert!(bad.is_err());
    // Unknown attribute read.
    let input = GraphInput::undirected(vec![(0, 1), (0, 2), (1, 2)]);
    let mut s = SessionBuilder::from_config(EngineConfig::default()).from_source(iturbograph::algorithms::TRIANGLE_COUNT, &input)
    .unwrap();
    s.run_oneshot();
    assert!(s.attr_value(0, "nope").is_err());
    assert!(s.global_value("nope", None).is_err());
}
