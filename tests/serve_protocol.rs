//! End-to-end `itg serve` protocol robustness: a long-lived server must
//! print an `error:` line and keep the session alive on malformed or
//! out-of-order commands, and a `ServeLimits` rejection must leave every
//! registered query's results exactly as they were. Drives the real
//! binary (`CARGO_BIN_EXE_itg`) over a scripted session.

use std::path::PathBuf;
use std::process::Command;

// WCC: the `comp` attribute gives QUERY a per-vertex result to print.
const WCC: &str = "Vertex (id, active, nbrs, comp: long, m: Accm<long, MIN>)
     Initialize (u): { u.comp = u.id; u.active = true; }
     Traverse (u): { For v in u.nbrs { v.m.Accumulate(u.comp); } }
     Update (u): { If (u.m < u.comp) { u.comp = u.m; u.active = true; } }";

fn fresh_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("itg-serve-protocol-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Runs of consecutive output lines starting with two spaces are QUERY
/// result blocks, in script order.
fn query_blocks(stdout: &str) -> Vec<Vec<String>> {
    let mut blocks = Vec::new();
    let mut cur: Vec<String> = Vec::new();
    for line in stdout.lines() {
        if line.starts_with("  ") {
            cur.push(line.to_string());
        } else if !cur.is_empty() {
            blocks.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        blocks.push(cur);
    }
    blocks
}

#[test]
fn malformed_commands_and_rejections_leave_the_session_serving() {
    let dir = fresh_dir();
    let edges = dir.join("edges.txt");
    let program = dir.join("deg.lnga");
    let script = dir.join("script.txt");
    std::fs::write(&edges, "0 1\n1 2\n").unwrap();
    std::fs::write(&program, WCC).unwrap();
    std::fs::write(
        &script,
        format!(
            "REGISTER deg {p}\n\
             QUERY deg\n\
             BATCH\n\
             + 3 4\n\
             bogus line inside a batch\n\
             + x y\n\
             COMMIT\n\
             QUERY deg\n\
             FROB\n\
             COMMIT\n\
             UNREGISTER nope\n\
             QUERY deg\n\
             BATCH\n\
             + 5 6\n\
             + 6 7\n\
             + 7 8\n\
             COMMIT\n\
             QUERY deg\n\
             BATCH\n\
             + 4 5\n\
             COMMIT\n\
             QUERY deg\n\
             QUIT\n",
            p = program.display()
        ),
    )
    .unwrap();

    let out = Command::new(env!("CARGO_BIN_EXE_itg"))
        .args([
            "serve",
            edges.to_str().unwrap(),
            "--undirected",
            "--script",
            script.to_str().unwrap(),
            "--max-batch-edges",
            "2",
        ])
        .output()
        .unwrap();
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        out.status.success(),
        "serve must survive every protocol error; stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Every malformed / out-of-order command produced its error line…
    for needle in [
        "error: line 5: expected mutation or COMMIT, got `bogus`; batch still open",
        "error: line 6: expected `+|- src dst`; line ignored, batch still open",
        "error: line 9: unknown command `FROB`",
        "error: line 10: COMMIT without an open BATCH",
        "error: line 11: unknown query `nope`",
        "rejected: batch of 3 mutations exceeds the 2 limit",
    ] {
        assert!(stdout.contains(needle), "missing `{needle}` in:\n{stdout}");
    }

    // …and the session kept working: the good mutation in the first batch
    // committed, and a post-rejection batch committed too.
    assert!(stdout.contains("committed batch 1:"), "{stdout}");
    assert!(stdout.contains("committed batch 2:"), "{stdout}");

    // QUERY blocks: initial, after batch 1, after the error volley, after
    // the rejection, after batch 2.
    let blocks = query_blocks(&stdout);
    assert_eq!(blocks.len(), 5, "five QUERY outputs in:\n{stdout}");
    assert_ne!(blocks[0], blocks[1], "batch 1 changed the results");
    assert_eq!(
        blocks[1], blocks[2],
        "protocol errors must not change any query's results"
    );
    assert_eq!(
        blocks[2], blocks[3],
        "a ServeLimits rejection must leave results untouched"
    );
    assert_ne!(blocks[3], blocks[4], "batch 2 changed the results");

    let _ = std::fs::remove_dir_all(&dir);
}
