//! Property tests over the whole pipeline: for randomly generated graphs,
//! mutation histories, and engine configurations, incremental execution is
//! indistinguishable from re-execution — the paper's correctness claim
//! (`Q(G ∪ ΔG) = Q(G) ∪ ΔQ`), machine-checked end to end.

use iturbograph::algorithms::{native, SimpleGraph};
use iturbograph::prelude::*;
use proptest::prelude::*;

/// A random undirected graph over `n` vertices plus a random mutation
/// history that keeps the graph simple.
#[derive(Debug, Clone)]
struct Scenario {
    n: usize,
    base: Vec<(u64, u64)>,
    batches: Vec<Vec<(u64, u64, bool)>>, // (a, b, is_insert)
    machines: usize,
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (
        6usize..20,
        proptest::collection::vec((0u64..20, 0u64..20), 10..50),
        proptest::collection::vec(
            proptest::collection::vec((0u64..20, 0u64..20, any::<bool>()), 1..8),
            1..4,
        ),
        1usize..4,
    )
        .prop_map(|(n, raw_base, raw_batches, machines)| {
            let n = n.max(8);
            let mut present = std::collections::BTreeSet::new();
            let mut base = Vec::new();
            for (a, b) in raw_base {
                let (a, b) = (a % n as u64, b % n as u64);
                if a != b && present.insert((a.min(b), a.max(b))) {
                    base.push((a.min(b), a.max(b)));
                }
            }
            let mut batches = Vec::new();
            for raw in raw_batches {
                let mut batch = Vec::new();
                for (a, b, prefer_insert) in raw {
                    let (a, b) = (a % n as u64, b % n as u64);
                    if a == b {
                        continue;
                    }
                    let key = (a.min(b), a.max(b));
                    let exists = present.contains(&key);
                    // Keep the graph simple: only legal mutations.
                    if exists && (!prefer_insert || present.len() > 4) {
                        present.remove(&key);
                        batch.push((key.0, key.1, false));
                    } else if !exists {
                        present.insert(key);
                        batch.push((key.0, key.1, true));
                    }
                }
                if !batch.is_empty() {
                    batches.push(batch);
                }
            }
            Scenario {
                n,
                base,
                batches,
                machines,
            }
        })
}

fn run_incremental(scn: &Scenario, src: &str, max_ss: usize) -> Session {
    let mut input = GraphInput::undirected(scn.base.clone());
    input.num_vertices = scn.n;
    let mut cfg = EngineConfig::with_machines(scn.machines);
    cfg.parallel = false;
    cfg.max_supersteps = max_ss;
    let mut s = SessionBuilder::from_config(cfg).from_source(src, &input).unwrap();
    s.run_oneshot();
    for batch in &scn.batches {
        let muts: Vec<EdgeMutation> = batch
            .iter()
            .map(|&(a, b, ins)| {
                if ins {
                    EdgeMutation::insert(a, b)
                } else {
                    EdgeMutation::delete(a, b)
                }
            })
            .collect();
        s.apply_mutations(&MutationBatch::new(muts));
        s.run_incremental();
    }
    s
}

fn final_edges(scn: &Scenario) -> Vec<(u64, u64)> {
    let mut present: std::collections::BTreeSet<(u64, u64)> =
        scn.base.iter().copied().collect();
    for batch in &scn.batches {
        for &(a, b, ins) in batch {
            if ins {
                present.insert((a, b));
            } else {
                present.remove(&(a, b));
            }
        }
    }
    present.into_iter().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn tc_incremental_equals_reference(scn in scenario()) {
        let s = run_incremental(&scn, iturbograph::algorithms::TRIANGLE_COUNT, usize::MAX);
        let edges = final_edges(&scn);
        let expected = native::triangle_count(&SimpleGraph::undirected(scn.n, &edges));
        prop_assert_eq!(
            s.global_value("cnts", None).unwrap(),
            Value::Long(expected)
        );
    }

    #[test]
    fn wcc_incremental_equals_reference(scn in scenario()) {
        let s = run_incremental(&scn, iturbograph::algorithms::WCC, usize::MAX);
        let edges = final_edges(&scn);
        let expected = native::wcc(&SimpleGraph::undirected(scn.n, &edges));
        let got: Vec<i64> = s
            .attr_column("comp")
            .unwrap()
            .into_iter()
            .map(|v| v.as_i64().unwrap())
            .collect();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn lcc_incremental_equals_reference(scn in scenario()) {
        let s = run_incremental(&scn, iturbograph::algorithms::LCC, usize::MAX);
        let edges = final_edges(&scn);
        let expected = native::lcc(&SimpleGraph::undirected(scn.n, &edges));
        let got: Vec<i64> = s
            .attr_column("lcc")
            .unwrap()
            .into_iter()
            .map(|v| v.as_i64().unwrap())
            .collect();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn bfs_incremental_equals_reference(scn in scenario()) {
        let s = run_incremental(&scn, &iturbograph::algorithms::bfs(0), usize::MAX);
        let edges = final_edges(&scn);
        let expected = native::bfs(&SimpleGraph::undirected(scn.n, &edges), 0);
        let got: Vec<i64> = s
            .attr_column("dist")
            .unwrap()
            .into_iter()
            .map(|v| v.as_i64().unwrap())
            .collect();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn lp_incremental_equals_reference(scn in scenario()) {
        let s = run_incremental(&scn, iturbograph::algorithms::LABEL_PROP, 10);
        let edges = final_edges(&scn);
        let expected = native::label_prop(&SimpleGraph::undirected(scn.n, &edges), 10);
        let got: Vec<i64> = s
            .attr_column("label")
            .unwrap()
            .into_iter()
            .map(|v| v.as_i64().unwrap())
            .collect();
        prop_assert_eq!(got, expected);
    }
}
